package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// typestate.go is the per-value finite-state-machine layer the ownership
// analyzers (bufown, sessionlife) share. A TSProtocol names the calls that
// give birth to a tracked value (takePage, sync.Pool.Get, NewSession, ...)
// and the calls that consume it (putPage, Close, ...); the engine then runs
// one state machine per birth site over the function's CFG with the forward
// solver, tracking which local variables may be bound to each value:
//
//	           birth                consume
//	  (none) ───────▶ LIVE ────────────────────▶ CONSUMED
//	                   │
//	                   │ return / store into caller-visible state
//	                   ▼
//	               ESCAPED            complex aliasing ──▶ ⊤ (untracked)
//
// Findings:
//
//   - a LIVE value reaching a non-panic exit with no deferred consume
//     registered on the path is a leak (reported at the birth site, naming
//     every exit it reaches, like unlockpath);
//   - reading a value that is CONSUMED on *every* path reaching the read is
//     a use-after-consume; consuming it again is a double-consume (both are
//     must-checks over the union of path states, so a value merely consumed
//     on one of several inbound paths is not reported);
//   - when the protocol says so, a return or caller-visible store of a LIVE
//     value is an escape finding (bufown: pooled values must stay
//     function-local); otherwise it silently transfers ownership out of the
//     checked function (sessionlife: constructors hand sessions to callers).
//
// Alias tracking is deliberately light, and always fails toward silence:
//
//   - bindings are may-sets: `y := x` binds both names to the cell;
//     `x = append(x, ...)` and other self-derived reassignments keep the
//     binding;
//   - variables captured by a function literal, address-taken, or named
//     results are never tracked (exemptVars); assigning a value to one
//     sends its cell to ⊤;
//   - a store through a variable declared *inside* the body (a local
//     composite, `shards[i].fork = ...`) is ⊤, not an escape — the checker
//     cannot tell a local structure from a smuggled caller pointer, so it
//     stays quiet; stores through parameters, receivers and package-level
//     variables are escapes;
//   - indexing/slicing a tracked value produces an untracked value, and a
//     deferred consume registered on a path covers every later exit on
//     that path (the unlockpath defer rule).
//
// Interprocedural effect summaries follow the lock-effect style: a call
// passing a tracked value to a program function that consumes that
// parameter on every non-panic return (a put/close wrapper) counts as the
// consume, resolved over static single-target edges with a cycle cut.
// Dynamic, interface and external callees contribute nothing — they are
// treated as borrowing their arguments.

// Cell states. The dataflow state unions the bits a value may be in across
// the paths reaching a program point, so "bits == tsConsumed" means
// consumed on every path (a must-fact), while "bits & tsLive != 0" means
// live on some path (a may-fact).
const (
	tsLive     uint8 = 1 << iota // born, not yet consumed
	tsConsumed                   // consumed: put back / closed
	tsEscaped                    // ownership left the function
	tsTop                        // aliasing too complex: stop tracking
)

// cellID identifies one tracked value by its birth site.
type cellID token.Pos

// TSProtocol is one ownership discipline for the typestate engine.
type TSProtocol struct {
	// Birth recognizes a call creating a tracked value, returning a short
	// description for messages ("pooled buffer from takePage()") and the
	// index of the call result that carries the value.
	Birth func(f *Func, call *ast.CallExpr) (desc string, result int, ok bool)
	// Consume recognizes a call ending a tracked value's lifetime,
	// returning the consumed expression (an argument or the method
	// receiver) and the verb for messages ("returned to its pool").
	Consume func(f *Func, call *ast.CallExpr) (target ast.Expr, verb string, ok bool)
	// SkipFunc exempts whole function bodies — the pool accessors
	// themselves, whose internal Get/Put is the mechanism being wrapped.
	SkipFunc func(f *Func) bool
	// EscapeIsFinding: a store of a live value into caller-visible state
	// (or a goroutine/channel handoff) is a finding rather than a silent
	// ownership transfer.
	EscapeIsFinding bool
	// ReturnIsFinding: returning a live value is a finding rather than a
	// transfer of ownership to the caller.
	ReturnIsFinding bool
	// Consumed is the past-participle phrase for messages: "returned to
	// its pool", "closed".
	Consumed string
	// FixHint closes the leak message: what the author should do.
	FixHint string
}

type tsFinding struct {
	pos token.Pos
	msg string
}

// tsIndex carries the per-run caches shared across functions: call-site
// resolution and the per-parameter consume summaries.
type tsIndex struct {
	prog     *Program
	proto    *TSProtocol
	calls    map[*Func]map[token.Pos]*Call
	consumed map[*Func][]int8 // per-parameter: 0 unknown, 1 consumes, 2 not
	onSum    map[*Func]bool   // summary recursion cut
}

// RunTypestate checks every in-scope function against the protocol and
// returns the findings sorted by position.
func RunTypestate(prog *Program, proto *TSProtocol, paths []string) []tsFinding {
	idx := &tsIndex{
		prog:     prog,
		proto:    proto,
		calls:    make(map[*Func]map[token.Pos]*Call),
		consumed: make(map[*Func][]int8),
		onSum:    make(map[*Func]bool),
	}
	scope := &Analyzer{Paths: paths}
	var out []tsFinding
	for _, f := range prog.Funcs {
		if !scope.applies(f.Pkg.Path) {
			continue
		}
		if proto.SkipFunc != nil && proto.SkipFunc(f) {
			continue
		}
		if !idx.hasBirth(f) {
			continue // the cheap gate: no births, nothing to track
		}
		out = append(out, idx.checkFunc(f)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos != out[j].pos {
			return out[i].pos < out[j].pos
		}
		return out[i].msg < out[j].msg
	})
	return out
}

// hasBirth reports whether f's body contains a direct birth call.
func (idx *tsIndex) hasBirth(f *Func) bool {
	found := false
	nodeWalk(f.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, _, ok := idx.proto.Birth(f, call); ok {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// callAt resolves a call expression to its single static program target,
// or nil (external, dynamic, interface, multi-target).
func (idx *tsIndex) callAt(f *Func, call *ast.CallExpr) *Func {
	m := idx.calls[f]
	if m == nil {
		m = make(map[token.Pos]*Call, len(f.Calls))
		for i := range f.Calls {
			c := &f.Calls[i]
			if _, ok := m[c.Pos]; !ok {
				m[c.Pos] = c
			}
		}
		idx.calls[f] = m
	}
	c := m[call.Pos()]
	if c == nil || c.Dynamic || len(c.Callees) != 1 {
		return nil
	}
	return c.Callees[0]
}

// tsState is the dataflow state: which cells each local may be bound to,
// each cell's state bits, the cells covered by a deferred consume, and
// each cell's error sibling — the error result born in the same tuple
// (`s, err := NewSession()`). A return that propagates the sibling while
// it still holds the birth's result is the constructor's failure path: the
// value is nil there, not leaked. Reassigning the error variable severs
// the association.
type tsState struct {
	bind   map[*types.Var]map[cellID]bool
	cells  map[cellID]uint8
	defers map[cellID]bool
	errs   map[cellID]*types.Var
}

func newTsState() *tsState {
	return &tsState{
		bind:   make(map[*types.Var]map[cellID]bool),
		cells:  make(map[cellID]uint8),
		defers: make(map[cellID]bool),
		errs:   make(map[cellID]*types.Var),
	}
}

func (s *tsState) clone() *tsState {
	c := &tsState{
		bind:   make(map[*types.Var]map[cellID]bool, len(s.bind)),
		cells:  make(map[cellID]uint8, len(s.cells)),
		defers: make(map[cellID]bool, len(s.defers)),
		errs:   make(map[cellID]*types.Var, len(s.errs)),
	}
	for v, set := range s.bind {
		cp := make(map[cellID]bool, len(set))
		for id := range set {
			cp[id] = true
		}
		c.bind[v] = cp
	}
	for id, bits := range s.cells {
		c.cells[id] = bits
	}
	for id := range s.defers {
		c.defers[id] = true
	}
	for id, v := range s.errs {
		c.errs[id] = v
	}
	return c
}

func tsJoin(a, b any) any {
	x, y := a.(*tsState), b.(*tsState)
	j := x.clone()
	for v, set := range y.bind {
		if j.bind[v] == nil {
			j.bind[v] = make(map[cellID]bool, len(set))
		}
		for id := range set {
			j.bind[v][id] = true
		}
	}
	for id, bits := range y.cells {
		j.cells[id] |= bits
	}
	for id := range y.defers {
		j.defers[id] = true
	}
	for id, v := range y.errs {
		if j.errs[id] == nil {
			j.errs[id] = v
		}
	}
	return j
}

func tsEqual(a, b any) bool {
	x, y := a.(*tsState), b.(*tsState)
	if len(x.bind) != len(y.bind) || len(x.cells) != len(y.cells) || len(x.defers) != len(y.defers) || len(x.errs) != len(y.errs) {
		return false
	}
	for v, set := range x.bind {
		o, ok := y.bind[v]
		if !ok || len(o) != len(set) {
			return false
		}
		for id := range set {
			if !o[id] {
				return false
			}
		}
	}
	for id, bits := range x.cells {
		if y.cells[id] != bits {
			return false
		}
	}
	for id := range x.defers {
		if !y.defers[id] {
			return false
		}
	}
	for id, v := range x.errs {
		if y.errs[id] != v {
			return false
		}
	}
	return true
}

// tsScan carries one function's check: cell metadata (stable across the
// fixpoint), the exempt variables, and the findings. Findings that depend
// on the flow state (use-after-consume, double-consume, escapes) are only
// reported during the post-fixpoint replay, when every block's in-state is
// final — a verdict taken mid-fixpoint could be invalidated as states grow.
type tsScan struct {
	idx       *tsIndex
	f         *Func
	info      *types.Info
	exempt    map[*types.Var]bool
	desc      map[cellID]string
	order     []cellID
	reporting bool
	seen      map[string]bool
	finds     []tsFinding
}

func (idx *tsIndex) checkFunc(f *Func) []tsFinding {
	s := &tsScan{
		idx:    idx,
		f:      f,
		info:   f.Pkg.Info,
		exempt: exemptVars(f),
		desc:   make(map[cellID]string),
		seen:   make(map[string]bool),
	}
	cfg := idx.prog.CFGOf(f)
	transfer := func(b *Block, in any) any {
		st := in.(*tsState).clone()
		for _, n := range b.Nodes {
			s.node(n, st)
		}
		return st
	}
	res := cfg.Forward(FlowSpec{
		Init:     func() any { return newTsState() },
		Transfer: transfer,
		Join:     tsJoin,
		Equal:    tsEqual,
	})

	// Replay every reachable block once against its final in-state with
	// reporting on. Block order makes the findings deterministic.
	s.reporting = true
	for _, b := range cfg.Blocks {
		if in, ok := res.In[b].(*tsState); ok {
			transfer(b, in)
		}
	}

	// Leaks: one finding per cell, at its birth, naming every non-panic
	// exit it reaches live without a deferred consume.
	exits := make(map[cellID][]string)
	for _, b := range cfg.ExitPreds() {
		if _, isPanic := b.Term.(*ast.CallExpr); isPanic {
			continue // a panic path is not a normal exit; unwinding is not a leak
		}
		st, ok := res.Out[b].(*tsState)
		if !ok {
			continue
		}
		ret, _ := b.Term.(*ast.ReturnStmt)
		for id, bits := range st.cells {
			if bits&tsLive == 0 || st.defers[id] {
				continue
			}
			// An exit returning the error born alongside the value — or one
			// reached only through the `sibling != nil` guard itself (the
			// bare `return` inside the guard of a void function) — is the
			// constructor's failure path: the value is nil there, not
			// leaked. (A reassigned error variable severs the association,
			// so a genuine later `return err` still counts.)
			if ev := st.errs[id]; ev != nil {
				if ret != nil && readsVar(s.info, ret, ev) {
					continue
				}
				if errGuardedExit(b, ev, s.info) {
					continue
				}
			}
			exits[id] = append(exits[id], exitDesc(idx.prog.Fset, b))
		}
	}
	out := s.finds
	for _, id := range s.order {
		descs := exits[id]
		if len(descs) == 0 {
			continue
		}
		sort.Strings(descs)
		out = append(out, tsFinding{
			pos: token.Pos(id),
			msg: fmt.Sprintf("%s in %s is not %s on every path: still live at %s — %s",
				s.desc[id], f.Name, idx.proto.Consumed, strings.Join(descs, ", "), idx.proto.FixHint),
		})
	}
	return out
}

// report records a finding once per (kind, position), surviving both the
// fixpoint re-runs and the replay pass.
func (s *tsScan) report(kind string, pos token.Pos, format string, args ...any) {
	if !s.reporting {
		return
	}
	key := fmt.Sprintf("%s:%d", kind, pos)
	if s.seen[key] {
		return
	}
	s.seen[key] = true
	s.finds = append(s.finds, tsFinding{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// node transfers one CFG node through the state.
func (s *tsScan) node(n ast.Node, st *tsState) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		s.assign(n.Lhs, n.Rhs, st)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, name := range vs.Names {
						lhs[i] = name
					}
					s.assign(lhs, vs.Values, st)
				}
			}
		}
	case *ast.DeferStmt:
		s.call(n.Call, st, true)
	case *ast.GoStmt:
		// The spawned call's own effects belong to its goroutine; a
		// tracked value handed to it crosses the lifetime boundary.
		s.walkEval(n.Call.Fun, st)
		for _, a := range n.Call.Args {
			cells := s.eval(a, st)
			s.escape(cells, a.Pos(), "the goroutine handoff", st)
		}
	case *ast.SendStmt:
		s.walkEval(n.Chan, st)
		cells := s.eval(n.Value, st)
		s.escape(cells, n.Value.Pos(), "the channel send", st)
	case *ast.ExprStmt:
		s.eval(n.X, st)
	case *ast.ReturnStmt:
		s.ret(n, st)
	case *ast.IncDecStmt:
		s.walkEval(n.X, st)
	default:
		s.walkEval(n, st)
	}
}

// eval walks one expression in source order, applying birth/consume events
// and use checks, and returns the cells the expression's value may denote.
func (s *tsScan) eval(n ast.Expr, st *tsState) map[cellID]bool {
	switch e := ast.Unparen(n).(type) {
	case *ast.Ident:
		return s.use(e, st)
	case *ast.CallExpr:
		return s.call(e, st, false)
	case *ast.TypeAssertExpr:
		return s.eval(e.X, st) // pool.Get().(*T) aliases the Get result
	default:
		s.walkEval(e, st)
		return nil
	}
}

// walkEval traverses an arbitrary node: idents are use-checked, nested
// calls get their events, function literal bodies are pruned (they are
// their own functions).
func (s *tsScan) walkEval(n ast.Node, st *tsState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			s.call(c, st, false)
			return false
		case *ast.Ident:
			s.use(c, st)
			return false
		}
		return true
	})
}

// use checks one variable read: a value already consumed on every path
// reaching the read is a use-after-consume. Returns the cells bound.
func (s *tsScan) use(id *ast.Ident, st *tsState) map[cellID]bool {
	obj, ok := s.info.Uses[id].(*types.Var)
	if !ok {
		return nil
	}
	set := st.bind[obj]
	if c, ok := mustConsumed(set, st); ok {
		s.report("use", id.Pos(), "%s is read through %s after it was already %s on every path reaching this point — a use-after-%s race",
			s.desc[c], id.Name, s.idx.proto.Consumed, consumeNoun(s.idx.proto.Consumed))
	}
	return set
}

// mustConsumed returns the lowest cell in set whose state is exactly
// CONSUMED (consumed on every inbound path), if any.
func mustConsumed(set map[cellID]bool, st *tsState) (cellID, bool) {
	best, found := cellID(0), false
	for c := range set {
		if st.cells[c] == tsConsumed && (!found || c < best) {
			best, found = c, true
		}
	}
	return best, found
}

// consumeNoun shortens the consumed phrase for the "use-after-X" tag.
func consumeNoun(consumed string) string {
	if i := strings.IndexByte(consumed, ' '); i > 0 {
		return consumed[:i]
	}
	return consumed
}

// call transfers one call expression and returns the cells its value may
// denote (non-nil only for births).
func (s *tsScan) call(call *ast.CallExpr, st *tsState, deferred bool) map[cellID]bool {
	proto := s.idx.proto
	if target, verb, ok := proto.Consume(s.f, call); ok {
		// Evaluate the non-consumed operands as plain reads. The consumed
		// operand itself is skipped — its read is the consume, reported as
		// a double-consume (not a use-after) when it happens twice.
		tgt := ast.Unparen(target)
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && ast.Unparen(sel.X) != tgt {
			s.walkEval(sel.X, st)
		}
		for _, a := range call.Args {
			if ast.Unparen(a) != tgt {
				s.eval(a, st)
			}
		}
		s.consume(target, verb, call.Pos(), st, deferred)
		return nil
	}
	if desc, _, ok := proto.Birth(s.f, call); ok {
		s.walkEval(call.Fun, st)
		for _, a := range call.Args {
			s.eval(a, st)
		}
		id := cellID(call.Pos())
		if _, known := s.desc[id]; !known {
			s.desc[id] = desc
			s.order = append(s.order, id)
		}
		st.cells[id] = tsLive // strong update: a loop re-birth starts fresh
		return map[cellID]bool{id: true}
	}
	// Ordinary call: arguments are borrows, unless the callee's summary
	// says it consumes that parameter on every return.
	s.walkEval(call.Fun, st)
	callee := s.idx.callAt(s.f, call)
	for i, a := range call.Args {
		cells := s.eval(a, st)
		if len(cells) == 0 || callee == nil || callee == s.f {
			continue
		}
		if s.idx.paramConsumed(callee, i) {
			s.consumeCells(cells, proto.Consumed, a.Pos(), st, deferred)
		}
	}
	return nil
}

// consume applies a consume event to the cells bound to target.
func (s *tsScan) consume(target ast.Expr, verb string, pos token.Pos, st *tsState, deferred bool) {
	id, ok := ast.Unparen(target).(*ast.Ident)
	if !ok {
		s.eval(target, st) // consuming a field/element: an untracked read
		return
	}
	obj, _ := s.info.Uses[id].(*types.Var)
	if obj == nil {
		return
	}
	s.consumeCells(st.bind[obj], verb, pos, st, deferred)
}

func (s *tsScan) consumeCells(cells map[cellID]bool, verb string, pos token.Pos, st *tsState, deferred bool) {
	if len(cells) == 0 {
		return
	}
	if deferred {
		for c := range cells {
			st.defers[c] = true
		}
		return
	}
	if c, ok := mustConsumed(cells, st); ok {
		s.report("double", pos, "%s is %s again here, but it was already %s on every path reaching this call — a double-%s",
			s.desc[c], verb, verb, consumeNoun(verb))
	}
	for c := range cells {
		st.cells[c] = tsConsumed
	}
}

// escape transfers ownership out of the function: a finding when the
// protocol forbids it, a silent state change otherwise.
func (s *tsScan) escape(cells map[cellID]bool, pos token.Pos, how string, st *tsState) {
	if len(cells) == 0 {
		return
	}
	if s.idx.proto.EscapeIsFinding {
		best, found := cellID(0), false
		for c := range cells {
			if st.cells[c]&tsLive != 0 && (!found || c < best) {
				best, found = c, true
			}
		}
		if found {
			s.report("escape", pos, "%s escapes the function through %s — a pooled value stored into caller-visible state outlives its return to the pool",
				s.desc[best], how)
		}
	}
	for c := range cells {
		st.cells[c] = tsEscaped
	}
}

// top abandons tracking: complex aliasing the engine cannot follow.
func (s *tsScan) top(cells map[cellID]bool, st *tsState) {
	for c := range cells {
		st.cells[c] = tsTop
	}
}

// assign transfers one assignment or value-spec binding.
func (s *tsScan) assign(lhs, rhs []ast.Expr, st *tsState) {
	if len(rhs) == 1 && len(lhs) > 1 {
		// Tuple form: v, err := birth() or v, ok := x.(T).
		r := ast.Unparen(rhs[0])
		if call, ok := r.(*ast.CallExpr); ok {
			if _, ri, isBirth := s.idx.proto.Birth(s.f, call); isBirth && ri < len(lhs) {
				cells := s.call(call, st, false)
				for i, l := range lhs {
					if i == ri {
						s.bindTo(l, cells, rhs[0], st)
					} else {
						s.killPlain(l, st)
					}
				}
				// Record the error sibling: `s, err := NewSession()` ties the
				// cell to err, so an exit returning that (unreassigned) err is
				// the constructor's failure path, not a leak.
				for i, l := range lhs {
					if i == ri {
						continue
					}
					id, ok := ast.Unparen(l).(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					obj := objOf(s.info, id)
					if obj == nil || !isErrorType(obj.Type()) {
						continue
					}
					for c := range cells {
						st.errs[c] = obj
					}
					break
				}
				return
			}
		}
		cells := s.eval(rhs[0], st)
		if _, isAssert := r.(*ast.TypeAssertExpr); isAssert {
			s.bindTo(lhs[0], cells, rhs[0], st)
			for _, l := range lhs[1:] {
				s.killPlain(l, st)
			}
			return
		}
		for _, l := range lhs {
			s.killPlain(l, st)
		}
		return
	}
	if len(lhs) != len(rhs) {
		for _, r := range rhs {
			s.eval(r, st)
		}
		for _, l := range lhs {
			s.killPlain(l, st)
		}
		return
	}
	cells := make([]map[cellID]bool, len(rhs))
	for i, r := range rhs {
		cells[i] = s.eval(r, st)
	}
	for i, l := range lhs {
		s.bindTo(l, cells[i], rhs[i], st)
	}
}

// killPlain removes a plain identifier's binding (it was reassigned to an
// untracked value) and severs any error-sibling association it carried.
func (s *tsScan) killPlain(l ast.Expr, st *tsState) {
	if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
		if obj := objOf(s.info, id); obj != nil {
			delete(st.bind, obj)
			s.severErr(obj, st)
		}
	}
}

// severErr drops error-sibling associations through obj: once the error
// variable is reassigned, returning it no longer proves the birth failed.
func (s *tsScan) severErr(obj *types.Var, st *tsState) {
	for c, v := range st.errs {
		if v == obj {
			delete(st.errs, c)
		}
	}
}

// bindTo routes the cells of one assigned value to its destination.
func (s *tsScan) bindTo(target ast.Expr, cells map[cellID]bool, rhs ast.Expr, st *tsState) {
	switch t := ast.Unparen(target).(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return // an unbound live cell still leaks at exit
		}
		obj := objOf(s.info, t)
		if obj == nil {
			return
		}
		switch {
		case s.exempt[obj]:
			// Captured by a closure, address-taken, or a named result:
			// conservatively untrackable.
			s.top(cells, st)
		case isPkgLevel(obj):
			s.escape(cells, t.Pos(), "the assignment to package-level "+t.Name, st)
		case !s.localVar(obj):
			// A free variable of an enclosing function: the enclosing
			// body owns it, and its own pass cannot see this store — ⊤.
			s.top(cells, st)
		case len(cells) == 0:
			// x = append(x, ...), x = x[:n]: a value derived from itself
			// keeps the binding (and, for an error variable, wrapping the
			// error keeps its sibling association); anything else kills both.
			if !readsVar(s.info, rhs, obj) {
				delete(st.bind, obj)
				s.severErr(obj, st)
			}
		default:
			set := make(map[cellID]bool, len(cells))
			for c := range cells {
				set[c] = true
			}
			st.bind[obj] = set
			s.severErr(obj, st)
		}
	default:
		// x.f = v, m[k] = v, *p = v: the base is read; where the value
		// lands decides escape vs ⊤.
		s.walkEval(t, st)
		if base := baseIdentOf(t); base != nil {
			if obj := objOf(s.info, base); obj != nil && s.bodyLocal(obj) && !s.exempt[obj] {
				s.top(cells, st) // stored into a structure local to the body
				return
			}
		}
		s.escape(cells, target.Pos(), "the store to "+exprPath(target), st)
	}
}

// ret transfers a return statement: per protocol, returning a live value
// is a finding or an ownership transfer to the caller. A tracked value
// returned inside a composite literal (`return &Wrapper{s: s}`) transfers
// the same way — the caller's wrapper owns it now.
func (s *tsScan) ret(n *ast.ReturnStmt, st *tsState) {
	for _, r := range n.Results {
		cells := s.eval(r, st)
		if len(cells) == 0 {
			cells = compositeCells(s.info, r, st)
		}
		if len(cells) == 0 {
			continue
		}
		if s.idx.proto.ReturnIsFinding {
			best, found := cellID(0), false
			for c := range cells {
				if st.cells[c]&tsLive != 0 && (!found || c < best) {
					best, found = c, true
				}
			}
			if found {
				s.report("return", r.Pos(), "%s is returned while still live — ownership of a pooled value must not leave the function; %s",
					s.desc[best], s.idx.proto.FixHint)
			}
		}
		for c := range cells {
			st.cells[c] = tsEscaped
		}
	}
}

// compositeCells collects the cells bound to plain identifiers that sit
// directly inside a returned composite literal (possibly under &), one
// composite level deep per element. The reads themselves were already
// use-checked by eval's walk; this only gathers the bindings so ret can
// apply the ownership-transfer rule.
func compositeCells(info *types.Info, r ast.Expr, st *tsState) map[cellID]bool {
	e := ast.Unparen(r)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	lit, ok := e.(*ast.CompositeLit)
	if !ok {
		return nil
	}
	var out map[cellID]bool
	var gather func(el ast.Expr)
	gather = func(el ast.Expr) {
		switch el := ast.Unparen(el).(type) {
		case *ast.KeyValueExpr:
			gather(el.Value)
		case *ast.CompositeLit:
			for _, inner := range el.Elts {
				gather(inner)
			}
		case *ast.UnaryExpr:
			if el.Op == token.AND {
				gather(el.X)
			}
		case *ast.Ident:
			obj, _ := info.Uses[el].(*types.Var)
			if obj == nil {
				return
			}
			for c := range st.bind[obj] {
				if out == nil {
					out = make(map[cellID]bool)
				}
				out[c] = true
			}
		}
	}
	for _, el := range lit.Elts {
		gather(el)
	}
	return out
}

// localVar reports whether obj is declared within f (parameters, receiver
// and body locals) — assignment to it stays function-local.
func (s *tsScan) localVar(obj *types.Var) bool {
	start := token.Pos(0)
	switch {
	case s.f.Decl != nil:
		start = s.f.Decl.Pos()
	case s.f.Lit != nil:
		start = s.f.Lit.Pos()
	}
	return obj.Pos() >= start && obj.Pos() < s.f.Body.End()
}

// bodyLocal reports whether obj is declared inside the body proper —
// stricter than localVar: parameters and receivers point at caller-owned
// state, body locals do not (as far as this engine can see).
func (s *tsScan) bodyLocal(obj *types.Var) bool {
	return obj.Pos() > s.f.Body.Pos() && obj.Pos() < s.f.Body.End()
}

// isPkgLevel reports whether obj is a package-level variable.
func isPkgLevel(obj *types.Var) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// errGuardedExit reports whether exit block b is the then-branch of an
// `ev != nil` guard: every predecessor's last executed node is the guard's
// condition and b is its true edge (the CFG builder emits the then-edge
// first). That shape is the birth's error check, where the tracked value
// is nil — the fall-through (false) edge never qualifies.
func errGuardedExit(b *Block, ev *types.Var, info *types.Info) bool {
	if len(b.Preds) == 0 {
		return false
	}
	for _, p := range b.Preds {
		if len(p.Nodes) == 0 || len(p.Succs) == 0 || p.Succs[0] != b {
			return false
		}
		be, ok := p.Nodes[len(p.Nodes)-1].(*ast.BinaryExpr)
		if !ok || be.Op != token.NEQ {
			return false
		}
		x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
		if !(readsIdent(info, x, ev) && isNilIdent(info, y)) &&
			!(readsIdent(info, y, ev) && isNilIdent(info, x)) {
			return false
		}
	}
	return true
}

// readsIdent reports whether e is exactly an identifier reading obj.
func readsIdent(info *types.Info, e ast.Expr, obj *types.Var) bool {
	id, ok := e.(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && info.Uses[id] == types.Universe.Lookup("nil")
}

// readsVar reports whether n reads obj anywhere beneath it.
func readsVar(info *types.Info, n ast.Node, obj *types.Var) bool {
	found := false
	nodeWalk(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// baseIdentOf walks a selector/index/star chain to its base identifier.
func baseIdentOf(x ast.Expr) *ast.Ident {
	for {
		switch t := ast.Unparen(x).(type) {
		case *ast.SelectorExpr:
			x = t.X
		case *ast.IndexExpr:
			x = t.X
		case *ast.StarExpr:
			x = t.X
		case *ast.Ident:
			return t
		default:
			return nil
		}
	}
}

// paramConsumed reports whether callee consumes its i'th parameter on
// every non-panic return — the put/close-wrapper summary. Conservative:
// unknown shapes, recursion, captured or address-taken parameters and
// path-dependent consumes all answer false.
func (idx *tsIndex) paramConsumed(callee *Func, i int) bool {
	if sum, ok := idx.consumed[callee]; ok && i < len(sum) && sum[i] != 0 {
		return sum[i] == 1
	}
	if idx.onSum[callee] {
		return false // recursion: give up on the back edge
	}
	pv, nparams := paramVarOf(callee, i)
	sum := idx.consumed[callee]
	if sum == nil {
		sum = make([]int8, nparams)
		idx.consumed[callee] = sum
	}
	if pv == nil || i >= len(sum) {
		if i < len(sum) {
			sum[i] = 2
		}
		return false
	}
	if exemptVars(callee)[pv] {
		sum[i] = 2
		return false
	}
	idx.onSum[callee] = true
	defer delete(idx.onSum, callee)

	result := idx.mustConsumeParam(callee, pv)
	if result {
		sum[i] = 1
	} else {
		sum[i] = 2
	}
	return result
}

// paramVarOf returns the object of callee's i'th parameter and the total
// parameter count (variadic parameters are not summarized).
func paramVarOf(callee *Func, i int) (*types.Var, int) {
	var ft *ast.FuncType
	switch {
	case callee.Decl != nil:
		ft = callee.Decl.Type
	case callee.Lit != nil:
		ft = callee.Lit.Type
	}
	if ft == nil || ft.Params == nil {
		return nil, 0
	}
	total := 0
	var found *types.Var
	for _, field := range ft.Params.List {
		if len(field.Names) == 0 {
			total++
			continue
		}
		for _, name := range field.Names {
			if total == i {
				if _, variadic := field.Type.(*ast.Ellipsis); !variadic {
					found, _ = callee.Pkg.Info.Defs[name].(*types.Var)
				}
			}
			total++
		}
	}
	return found, total
}

// pcState is the summary-analysis state: the variables still aliasing the
// parameter on this path, and whether it has been consumed. Joins are
// must-joins (alias intersection, consumed AND) so the answer only says
// yes when every path agrees.
type pcState struct {
	aliases  map[*types.Var]bool
	consumed bool
}

func (s *pcState) clone() *pcState {
	c := &pcState{aliases: make(map[*types.Var]bool, len(s.aliases)), consumed: s.consumed}
	for v := range s.aliases {
		c.aliases[v] = true
	}
	return c
}

// mustConsumeParam runs the wrapper summary: does every non-panic path
// through callee consume pv?
func (idx *tsIndex) mustConsumeParam(callee *Func, pv *types.Var) bool {
	cfg := idx.prog.CFGOf(callee)
	info := callee.Pkg.Info
	res := cfg.Forward(FlowSpec{
		Init: func() any { return &pcState{aliases: map[*types.Var]bool{pv: true}} },
		Transfer: func(b *Block, in any) any {
			st := in.(*pcState).clone()
			for _, n := range b.Nodes {
				idx.pcNode(callee, info, n, st)
			}
			return st
		},
		Join: func(a, b any) any {
			x, y := a.(*pcState), b.(*pcState)
			j := &pcState{aliases: make(map[*types.Var]bool), consumed: x.consumed && y.consumed}
			for v := range x.aliases {
				if y.aliases[v] {
					j.aliases[v] = true
				}
			}
			return j
		},
		Equal: func(a, b any) bool {
			x, y := a.(*pcState), b.(*pcState)
			if x.consumed != y.consumed || len(x.aliases) != len(y.aliases) {
				return false
			}
			for v := range x.aliases {
				if !y.aliases[v] {
					return false
				}
			}
			return true
		},
	})
	for _, b := range cfg.ExitPreds() {
		if _, isPanic := b.Term.(*ast.CallExpr); isPanic {
			continue
		}
		st, ok := res.Out[b].(*pcState)
		if !ok || !st.consumed {
			return false
		}
	}
	return true
}

// pcNode transfers one node of the wrapper summary. A deferred consume
// counts as consuming (registration order vs later exits is not modeled —
// a deliberate over-approximation noted in the package docs).
func (idx *tsIndex) pcNode(callee *Func, info *types.Info, n ast.Node, st *pcState) {
	aliasIdent := func(e ast.Expr) *types.Var {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj, ok := info.Uses[id].(*types.Var); ok && st.aliases[obj] {
				return obj
			}
		}
		return nil
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i, l := range n.Lhs {
				id, ok := ast.Unparen(l).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := objOf(info, id)
				if obj == nil {
					continue
				}
				if aliasIdent(n.Rhs[i]) != nil {
					st.aliases[obj] = true
				} else {
					delete(st.aliases, obj)
				}
			}
		}
		for _, r := range n.Rhs {
			idx.pcCalls(callee, info, r, st, false)
		}
	case *ast.DeferStmt:
		idx.pcCall(callee, info, n.Call, st, true)
	default:
		idx.pcCalls(callee, info, n, st, false)
	}
}

// pcCalls finds every call beneath n and applies pcCall.
func (idx *tsIndex) pcCalls(callee *Func, info *types.Info, n ast.Node, st *pcState, deferred bool) {
	nodeWalk(n, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok {
			idx.pcCall(callee, info, call, st, deferred)
		}
		return true
	})
}

func (idx *tsIndex) pcCall(callee *Func, info *types.Info, call *ast.CallExpr, st *pcState, deferred bool) {
	_ = deferred // a deferred consume still counts; see pcNode
	if target, _, ok := idx.proto.Consume(callee, call); ok {
		if id, ok := ast.Unparen(target).(*ast.Ident); ok {
			if obj, ok := info.Uses[id].(*types.Var); ok && st.aliases[obj] {
				st.consumed = true
			}
		}
		return
	}
	next := idx.callAt(callee, call)
	if next == nil || next == callee {
		return
	}
	for i, a := range call.Args {
		if id, ok := ast.Unparen(a).(*ast.Ident); ok {
			if obj, ok := info.Uses[id].(*types.Var); ok && st.aliases[obj] {
				if idx.paramConsumed(next, i) {
					st.consumed = true
				}
			}
		}
	}
}

// calleeFuncOf resolves a call head to the *types.Func it names, through
// identifiers and selectors (nil for dynamic calls and builtins).
func calleeFuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
