package analysis

import (
	"strings"
	"testing"
)

// The seeded bug: a forever-goroutine nothing can await or stop.
const goroleakFixture = `package fx

type Server struct {
	hits int
}

func (s *Server) churn() {
	for {
		s.hits++
	}
}

func (s *Server) Start() {
	go s.churn()
}
`

func TestGoroleakFires(t *testing.T) {
	got := checkFixture(t, "repro/internal/wire", goroleakFixture, Goroleak())
	wantFindings(t, got, "goroutine fx.(*Server).churn has no lifecycle")
}

func TestGoroleakCleanVariants(t *testing.T) {
	src := `package fx

import (
	"context"
	"sync"
)

type Server struct {
	wg   sync.WaitGroup
	stop chan struct{}
	work chan int
	hits int
}

// WaitGroup idiom: the spawner can await it.
func (s *Server) StartCounted() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.hits++
	}()
}

// Done-channel idiom, reached transitively through a named method.
func (s *Server) loop() {
	for {
		select {
		case <-s.stop:
			return
		case n := <-s.work:
			s.hits += n
		}
	}
}

func (s *Server) StartLoop() {
	go s.loop()
}

// Context idiom.
func (s *Server) StartCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
		s.hits = 0
	}()
}

// Result-channel idiom: the send ties completion to a receiver.
func Compute(out chan<- int) {
	go func() {
		out <- 42
	}()
}

// Dynamic spawn: the body is not visible, so the analyzer stays quiet.
func Spawn(f func()) {
	go f()
}
`
	if got := checkFixture(t, "repro/internal/wire", src, Goroleak()); len(got) != 0 {
		t.Fatalf("clean fixture produced findings:\n%s", renderFindings(got))
	}
}

func TestGoroleakDaemonWaiver(t *testing.T) {
	waived := strings.Replace(goroleakFixture, "go s.churn()",
		"//lint:ignore goroleak churn is a process-lifetime daemon\n\tgo s.churn()", 1)
	if got := checkFixture(t, "repro/internal/wire", waived, Goroleak()); len(got) != 0 {
		t.Fatalf("waived daemon produced findings:\n%s", renderFindings(got))
	}
}
