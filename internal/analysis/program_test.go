package analysis

import (
	"strings"
	"testing"
)

// progOf builds the whole-program layer over the fixtures.
func progOf(t *testing.T, fixtures ...fixturePkg) *Program {
	t.Helper()
	return BuildProgram(fixturePackages(t, fixtures))
}

// funcNamed finds the program node whose display name contains sub,
// preferring an exact match (a literal's name contains its parent's).
func funcNamed(t *testing.T, prog *Program, sub string) *Func {
	t.Helper()
	for _, f := range prog.Funcs {
		if f.Name == sub {
			return f
		}
	}
	var found *Func
	for _, f := range prog.Funcs {
		if strings.Contains(f.Name, sub) {
			if found != nil {
				t.Fatalf("ambiguous function %q: %s and %s", sub, found.Name, f.Name)
			}
			found = f
		}
	}
	if found == nil {
		t.Fatalf("no function matching %q", sub)
	}
	return found
}

// callees flattens every resolved callee name of a function.
func callees(f *Func) []string {
	var out []string
	for _, c := range f.Calls {
		for _, callee := range c.Callees {
			out = append(out, callee.Name)
		}
	}
	return out
}

func hasCallee(f *Func, sub string) bool {
	for _, name := range callees(f) {
		if strings.Contains(name, sub) {
			return true
		}
	}
	return false
}

const callGraphFixture = `package fx

type Closer interface {
	Close() error
}

type FileA struct{}

func (f *FileA) Close() error { return nil }

type FileB struct{}

func (f *FileB) Close() error { return nil }

func Direct(a *FileA) {
	helper()
	a.Close()
}

func helper() {}

func ViaInterface(c Closer) {
	c.Close()
}

type hook func(int) int

func twice(x int) int { return x + x }

var registered hook = twice

func ViaValue(h hook) int {
	return h(1)
}

func WithLit() {
	f := func() { helper() }
	f()
}
`

func TestCallGraphDirect(t *testing.T) {
	prog := progOf(t, fixturePkg{path: "repro/fx", src: callGraphFixture})
	direct := funcNamed(t, prog, "fx.Direct")
	if !hasCallee(direct, "fx.helper") {
		t.Errorf("Direct should call helper; has %v", callees(direct))
	}
	if !hasCallee(direct, "(*FileA).Close") {
		t.Errorf("Direct should resolve a.Close() to (*FileA).Close; has %v", callees(direct))
	}
	if hasCallee(direct, "FileB") {
		t.Errorf("a concrete method call must not dispatch to other types; has %v", callees(direct))
	}
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	prog := progOf(t, fixturePkg{path: "repro/fx", src: callGraphFixture})
	via := funcNamed(t, prog, "fx.ViaInterface")
	if !hasCallee(via, "(*FileA).Close") || !hasCallee(via, "(*FileB).Close") {
		t.Errorf("interface call should dispatch to every implementer; has %v", callees(via))
	}
	if len(via.Calls) != 1 || !via.Calls[0].Dynamic {
		t.Errorf("interface dispatch should be marked dynamic: %+v", via.Calls)
	}
}

func TestCallGraphFunctionValue(t *testing.T) {
	prog := progOf(t, fixturePkg{path: "repro/fx", src: callGraphFixture})
	via := funcNamed(t, prog, "fx.ViaValue")
	// twice is address-taken (assigned to registered), so the call through
	// the hook value conservatively targets it.
	if !hasCallee(via, "fx.twice") {
		t.Errorf("dynamic call should target address-taken matching functions; has %v", callees(via))
	}
	// helper is only ever called directly — it must NOT be a dynamic
	// target even though no signature would match anyway; check a callee
	// that matches the signature but is never address-taken is absent:
	// Direct has signature func(*FileA), no hook matches — nothing to
	// assert beyond twice being the sole target.
	for _, c := range via.Calls {
		for _, callee := range c.Callees {
			if callee.Name != "fx.twice" {
				t.Errorf("unexpected dynamic target %s", callee.Name)
			}
		}
	}
}

func TestCallGraphFuncLit(t *testing.T) {
	prog := progOf(t, fixturePkg{path: "repro/fx", src: callGraphFixture})
	with := funcNamed(t, prog, "fx.WithLit")
	if !hasCallee(with, "WithLit.func@") {
		t.Errorf("creating a literal should add an implicit call edge; has %v", callees(with))
	}
	lit := funcNamed(t, prog, "WithLit.func@")
	if !hasCallee(lit, "fx.helper") {
		t.Errorf("the literal body should call helper; has %v", callees(lit))
	}
}

const lockEventFixture = `package fx

import "sync"

var pkgMu sync.Mutex

type Box struct {
	mu sync.RWMutex
}

type Outer struct {
	box *Box
}

func (o *Outer) Ops() {
	o.box.mu.Lock()
	defer o.box.mu.Unlock()
	pkgMu.Lock()
	pkgMu.Unlock()
	o.box.mu.RLock()
	o.box.mu.RUnlock()
}

func LocalsIgnored() {
	var mu sync.Mutex
	mu.Lock()
	mu.Unlock()
}
`

func TestLockEvents(t *testing.T) {
	prog := progOf(t, fixturePkg{path: "repro/fx", src: lockEventFixture})
	ops := funcNamed(t, prog, "(*Outer).Ops")
	if len(ops.Locks) != 6 {
		t.Fatalf("got %d lock events, want 6: %+v", len(ops.Locks), ops.Locks)
	}
	// Events arrive in position order: Lock, deferred Unlock, pkg
	// Lock/Unlock, RLock/RUnlock.
	if ops.Locks[0].Lock.String() != "fx.Box.mu" || ops.Locks[0].Op != LockAcquire {
		t.Errorf("event 0 = %+v, want acquire of fx.Box.mu", ops.Locks[0])
	}
	if !ops.Locks[1].Deferred || ops.Locks[1].Op != LockRelease {
		t.Errorf("event 1 = %+v, want deferred release", ops.Locks[1])
	}
	if ops.Locks[2].Lock.String() != "fx.pkgMu" {
		t.Errorf("event 2 = %+v, want package-level fx.pkgMu", ops.Locks[2])
	}
	if !ops.Locks[4].Read || ops.Locks[4].Op != LockAcquire {
		t.Errorf("event 4 = %+v, want read acquire", ops.Locks[4])
	}
	locals := funcNamed(t, prog, "fx.LocalsIgnored")
	if len(locals.Locks) != 0 {
		t.Errorf("function-local mutexes must be ignored: %+v", locals.Locks)
	}
}

// Cross-package object identity: a method defined in one package and
// called from another must resolve to the same *Func node.
func TestCallGraphCrossPackage(t *testing.T) {
	prog := progOf(t,
		fixturePkg{path: "repro/fxa", src: `package fxa

type T struct{}

func (t *T) Work() {}
`},
		fixturePkg{path: "repro/fxb", src: `package fxb

import "repro/fxa"

func Use(t *fxa.T) {
	t.Work()
}
`})
	use := funcNamed(t, prog, "fxb.Use")
	if !hasCallee(use, "(*T).Work") {
		t.Fatalf("cross-package call should resolve to fxa's node; has %v", callees(use))
	}
	work := funcNamed(t, prog, "(*T).Work")
	if use.Calls[0].Callees[0] != work {
		t.Fatalf("cross-package call resolved to a different node than the defining package's")
	}
}
