package analysis

import (
	"go/ast"
	"strconv"
)

// Wallclock forbids wall-clock and randomness sources in the kernel
// packages. The paper's temporal model assigns every state change a
// transaction time from the commit clock (txn.Manager), so a read dialed
// to @T is reproducible forever; code that consults time.Now or math/rand
// on those paths would make history depend on when (or how luckily) it was
// replayed. Benchmarks and the experiments package measure real elapsed
// time and are simply outside this analyzer's scope.
func Wallclock(paths ...string) *Analyzer {
	a := &Analyzer{
		Name:  "wallclock",
		Doc:   "no time.Now/math/rand in kernel packages; time comes from the commit clock",
		Paths: paths,
	}
	a.Run = func(pass *Pass) { runWallclock(pass) }
	return a
}

// forbidden wall-clock functions in package "time". time.Duration math and
// timers for I/O deadlines are not flagged; only observations of the
// current wall-clock instant are.
var wallclockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

func runWallclock(pass *Pass) {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if randPackages[path] {
				pass.Reportf(imp.Pos(), "import of %s: kernel packages must be deterministic (derive pseudo-randomness from committed state if needed)", path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if wallclockFuncs[obj.Name()] {
					pass.Reportf(id.Pos(), "time.%s observes the wall clock; transaction time must come from the commit clock so @T reads replay identically", obj.Name())
				}
			}
			return true
		})
	}
}
