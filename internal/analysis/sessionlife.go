package analysis

import (
	"go/ast"
	"go/types"
)

// Sessionlife checks the session lifecycle from the paper's login model
// (§3) as the repo implements it: a *Session born from NewSession must
// reach Close on every path out of the creating function and never be used
// after it (an open session pins the validation log, blocking the first
// post-open solo commit — the exact gemstone.Open/CreateUser bootstrap
// leak PR 7 fixed by hand), and a forked reader born from ForkReader must
// be absorbed (AbsorbReads) or closed before the function returns.
//
// Conservatism rules (on top of the typestate engine's, see typestate.go):
//
//   - Births are calls to program functions named NewSession or ForkReader
//     whose first result is a *Session (matched by shape, so fixtures and
//     future session-like types participate); consumes are the Close
//     method on a *Session value, AbsorbReads (first argument), and any
//     program helper the consume summary proves closes its parameter on
//     every return.
//   - Returning a session or storing it into caller-visible state is a
//     silent ownership transfer, not a finding: constructors legitimately
//     hand sessions to their callers, and the receiving layer owns the
//     close. The checker therefore enforces the lifecycle only inside the
//     function that created the session; a session embedded in a returned
//     wrapper struct leaves its scope via an explicit waiver at the birth
//     site naming the owner that closes it.
func Sessionlife(paths ...string) *Analyzer {
	return &Analyzer{
		Name:  "sessionlife",
		Doc:   "sessions reach Close on every path and are never used after; forked readers are absorbed or closed",
		Paths: paths,
		Run:   runSessionlife,
	}
}

func runSessionlife(pass *Pass) {
	findings := pass.Prog.Once("sessionlife", func() any {
		return RunTypestate(pass.Prog, sessionlifeProtocol(pass.Prog), pass.Analyzer.Paths)
	}).([]tsFinding)
	for _, f := range findings {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// isSessionPtr recognizes a *Session of any program package by shape.
func isSessionPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Session"
}

func sessionlifeProtocol(prog *Program) *TSProtocol {
	return &TSProtocol{
		Birth: func(f *Func, call *ast.CallExpr) (string, int, bool) {
			fn := calleeFuncOf(f.Pkg.Info, call)
			if fn == nil || prog.FuncOf(fn) == nil {
				return "", 0, false
			}
			name := fn.Name()
			if name != "NewSession" && name != "ForkReader" {
				return "", 0, false
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Results().Len() == 0 || !isSessionPtr(sig.Results().At(0).Type()) {
				return "", 0, false
			}
			if name == "ForkReader" {
				return "forked reader from " + callName(call), 0, true
			}
			return "session from " + callName(call), 0, true
		},
		Consume: func(f *Func, call *ast.CallExpr) (ast.Expr, string, bool) {
			fn := calleeFuncOf(f.Pkg.Info, call)
			if fn == nil {
				return nil, "", false
			}
			switch fn.Name() {
			case "Close":
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return nil, "", false
				}
				if tv, ok := f.Pkg.Info.Types[sel.X]; !ok || !isSessionPtr(tv.Type) {
					return nil, "", false
				}
				return sel.X, "closed", true
			case "AbsorbReads":
				if prog.FuncOf(fn) == nil || len(call.Args) != 1 {
					return nil, "", false
				}
				if tv, ok := f.Pkg.Info.Types[call.Args[0]]; !ok || !isSessionPtr(tv.Type) {
					return nil, "", false
				}
				return call.Args[0], "absorbed", true
			}
			return nil, "", false
		},
		EscapeIsFinding: false,
		ReturnIsFinding: false,
		Consumed:        "closed",
		FixHint:         "close it before each exit or defer the close (forked readers: absorb or close)",
	}
}
