package analysis

import (
	"strings"
	"testing"
)

// The ReadTrack bug class: the cache element escapes uncopied, directly
// and via a local variable; the append-copy is clean; values extracted
// from the buffer (not references into it) are clean.
const aliasFixture = `package fx

type Cache struct {
	bufs map[uint32][]byte
}

func (c *Cache) Get(k uint32) []byte {
	return c.bufs[k]
}

func (c *Cache) GetVia(k uint32) []byte {
	b := c.bufs[k]
	b = b[4:]
	return b
}

func (c *Cache) GetCopy(k uint32) []byte {
	return append([]byte(nil), c.bufs[k]...)
}

func (c *Cache) First(k uint32) byte {
	return c.bufs[k][0]
}

func (c *Cache) Len(k uint32) int {
	return len(c.bufs[k])
}
`

func TestAliasretReturnEscapes(t *testing.T) {
	got := checkFixture(t, "repro/fx", aliasFixture, Aliasret())
	wantFindings(t, got,
		"an element of receiver-owned cache field fx.bufs",
		"receiver-owned storage (via b)",
	)
}

// Storing a cache reference through an out-parameter escapes too.
const aliasStoreFixture = `package fx

type Result struct {
	Payload []byte
}

type Cache struct {
	bufs map[uint32][]byte
}

func (c *Cache) Fill(k uint32, out *Result) {
	out.Payload = c.bufs[k]
}

func (c *Cache) FillCopy(k uint32, out *Result) {
	out.Payload = append([]byte(nil), c.bufs[k]...)
}

func (c *Cache) FillSlot(k uint32, dst [][]byte) {
	dst[0] = c.bufs[k]
}
`

func TestAliasretStoreThroughParam(t *testing.T) {
	got := checkFixture(t, "repro/fx", aliasStoreFixture, Aliasret())
	wantFindings(t, got,
		"stores an uncopied reference",
		"stores an uncopied reference",
	)
}

// Returning the whole cache map leaks every buffer.
const aliasWholeFixture = `package fx

type Registry struct {
	entries map[string][]byte
}

func (r *Registry) All() map[string][]byte {
	return r.entries
}
`

func TestAliasretWholeCacheEscapes(t *testing.T) {
	got := checkFixture(t, "repro/fx", aliasWholeFixture, Aliasret())
	wantFindings(t, got, "receiver-owned cache field fx.entries")
}

// Pointer-element caches are exempt: shared object caches hand out
// pointers by design, and exported fields are the owner's public API.
const aliasExemptFixture = `package fx

type Obj struct{ V int }

type Cache struct {
	objs map[uint32]*Obj
	Pub  map[uint32][]byte
}

func (c *Cache) Get(k uint32) *Obj {
	return c.objs[k]
}

func (c *Cache) GetPub(k uint32) []byte {
	return c.Pub[k]
}
`

func TestAliasretExemptions(t *testing.T) {
	wantFindings(t, checkFixture(t, "repro/fx", aliasExemptFixture, Aliasret()))
}

// A waiver on the return line documents intentional zero-copy.
func TestAliasretWaiver(t *testing.T) {
	waived := strings.Replace(aliasFixture,
		"\treturn c.bufs[k]\n}",
		"\t//lint:ignore aliasret zero-copy by contract: callers treat pages as immutable\n\treturn c.bufs[k]\n}", 1)
	if waived == aliasFixture {
		t.Fatal("replacement did not apply")
	}
	got := checkFixture(t, "repro/fx", waived, Aliasret())
	wantFindings(t, got, "receiver-owned storage (via b)") // only GetVia remains
}

// The cross-package escape: a wrapper returns its inner cache's buffer
// uncopied. The inner method's summary (result aliases receiver storage)
// must propagate so the wrapper is flagged in ITS package too.
func TestAliasretCrossPackageEscape(t *testing.T) {
	got := checkFixtures(t, []fixturePkg{
		{path: "repro/fxa", src: `package fxa

type Cache struct {
	bufs map[uint32][]byte
}

func (c *Cache) Get(k uint32) []byte {
	return c.bufs[k]
}
`},
		{path: "repro/fxb", src: `package fxb

import "repro/fxa"

type Track struct {
	cache *fxa.Cache
}

func (t *Track) Read(k uint32) []byte {
	return t.cache.Get(k)
}

func (t *Track) ReadCopy(k uint32) []byte {
	return append([]byte(nil), t.cache.Get(k)...)
}
`},
	}, Aliasret())
	wantFindings(t, got,
		"an element of receiver-owned cache field fxa.bufs", // fxa.Get itself
		"storage owned by fxa.(*Cache).Get",                 // fxb wrapper
	)
	if !strings.Contains(got[1].Pos.Filename, "fixture1.go") {
		t.Errorf("the wrapper escape should be reported in fxb's file, got %s", got[1].Pos.Filename)
	}
}
