package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Locksafe enforces the repository's documented locking discipline. A
// mutex field annotated
//
//	mu sync.Mutex // guards a, b, c
//
// (or a data field annotated "guarded by mu") may only be accessed through
// the receiver in methods that lock that mutex first, or in methods whose
// name ends in "Locked" (the convention for helpers whose callers hold the
// lock). Writes require Lock; RLock only licenses reads.
//
// The check is intentionally flow-insensitive: a Lock call anywhere before
// the access (by source position) satisfies it, and cross-struct accesses
// (x.y.field where x.y is not the receiver) are out of scope. It catches
// the common failure — a new method or branch that forgets the lock — not
// every interleaving.
func Locksafe() *Analyzer {
	a := &Analyzer{
		Name: "locksafe",
		Doc:  "fields annotated 'guards'/'guarded by' must be accessed under their mutex",
	}
	a.Run = func(pass *Pass) { runLocksafe(pass) }
	return a
}

var (
	guardsRe    = regexp.MustCompile(`\bguards:?\s+(.+)`)
	guardedByRe = regexp.MustCompile(`\bguarded by\s+(\w+)`)
)

// guardSet maps guarded field name -> mutex field name, per struct type.
type guardSet map[string]string

func runLocksafe(pass *Pass) {
	// structGuards: named struct type -> guarded fields.
	structGuards := make(map[*types.Named]guardSet)

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			obj := pass.Info.Defs[ts.Name]
			if obj == nil {
				return true
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				return true
			}
			gs := collectGuards(pass, ts.Name.Name, st)
			if len(gs) > 0 {
				structGuards[named] = gs
			}
			return true
		})
	}
	if len(structGuards) == 0 {
		return
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recvNamed, recvObj := receiverOf(pass, fd)
			if recvNamed == nil || recvObj == nil {
				continue
			}
			gs, ok := structGuards[recvNamed]
			if !ok {
				continue
			}
			checkMethodLocks(pass, fd, recvObj, gs)
		}
	}
}

// collectGuards parses the guard annotations of one struct declaration.
func collectGuards(pass *Pass, typeName string, st *ast.StructType) guardSet {
	fieldNames := make(map[string]bool)
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			fieldNames[n.Name] = true
		}
	}
	gs := make(guardSet)
	for _, f := range st.Fields.List {
		if len(f.Names) == 0 {
			continue
		}
		text := fieldComment(f)
		if text == "" {
			continue
		}
		if m := guardsRe.FindStringSubmatch(text); m != nil {
			mu := f.Names[0].Name
			for _, name := range strings.Split(m[1], ",") {
				name = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(name), "."))
				if name == "" {
					continue
				}
				if !fieldNames[name] {
					pass.Reportf(f.Pos(), "%s.%s guards unknown field %q (annotation must list field names)", typeName, mu, name)
					continue
				}
				gs[name] = mu
			}
		}
		if m := guardedByRe.FindStringSubmatch(text); m != nil {
			mu := m[1]
			if !fieldNames[mu] {
				pass.Reportf(f.Pos(), "%s.%s guarded by unknown field %q", typeName, f.Names[0].Name, mu)
			} else {
				for _, n := range f.Names {
					gs[n.Name] = mu
				}
			}
		}
	}
	return gs
}

func fieldComment(f *ast.Field) string {
	var parts []string
	if f.Doc != nil {
		parts = append(parts, f.Doc.Text())
	}
	if f.Comment != nil {
		parts = append(parts, f.Comment.Text())
	}
	return strings.Join(parts, " ")
}

// receiverOf resolves the method's receiver named type and variable.
func receiverOf(pass *Pass, fd *ast.FuncDecl) (*types.Named, *types.Var) {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil, nil
	}
	ident := fd.Recv.List[0].Names[0]
	obj, ok := pass.Info.Defs[ident].(*types.Var)
	if !ok {
		return nil, nil
	}
	t := obj.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named, obj
}

type lockCall struct {
	pos  token.Pos
	mu   string
	read bool // RLock rather than Lock
}

// checkMethodLocks verifies guarded-field accesses within one method.
func checkMethodLocks(pass *Pass, fd *ast.FuncDecl, recv *types.Var, gs guardSet) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	var locks []lockCall
	// First pass: find recv.<mu>.Lock() / RLock() calls.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		method := sel.Sel.Name
		if method != "Lock" && method != "RLock" {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := inner.X.(*ast.Ident)
		if !ok || pass.Info.Uses[base] != recv {
			return true
		}
		locks = append(locks, lockCall{pos: call.Pos(), mu: inner.Sel.Name, read: method == "RLock"})
		return true
	})

	// Second pass: guarded accesses.
	writes := writeTargets(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || pass.Info.Uses[base] != recv {
			return true
		}
		mu, guarded := gs[sel.Sel.Name]
		if !guarded {
			return true
		}
		isWrite := writes[sel]
		if !lockHeldBefore(locks, mu, sel.Pos(), isWrite) {
			kind := "read"
			need := fmt.Sprintf("%s.%s.Lock or RLock", base.Name, mu)
			if isWrite {
				kind = "write"
				need = fmt.Sprintf("%s.%s.Lock", base.Name, mu)
			}
			pass.Reportf(sel.Pos(), "%s of %s.%s without %s (or name the method *Locked)",
				kind, base.Name, sel.Sel.Name, need)
		}
		return true
	})
}

// writeTargets marks selector expressions that are assigned to (or have
// their address taken, conservatively a potential write).
func writeTargets(body ast.Node) map[*ast.SelectorExpr]bool {
	out := make(map[*ast.SelectorExpr]bool)
	mark := func(e ast.Expr) {
		if sel, ok := e.(*ast.SelectorExpr); ok {
			out[sel] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
				// Writing an element of a guarded map/slice field
				// (s.cache[k] = v) mutates the field.
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					mark(ix.X)
				}
			}
		case *ast.IncDecStmt:
			mark(n.X)
			if ix, ok := n.X.(*ast.IndexExpr); ok {
				mark(ix.X)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		case *ast.CallExpr:
			// delete(s.cache, k) and append into a guarded slice both
			// mutate; treat the first argument of delete and any guarded
			// field passed to append as writes.
			if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "delete" || id.Name == "append") && len(n.Args) > 0 {
				mark(n.Args[0])
			}
		}
		return true
	})
	return out
}

// lockHeldBefore reports whether a satisfying lock call precedes pos.
func lockHeldBefore(locks []lockCall, mu string, pos token.Pos, write bool) bool {
	for _, l := range locks {
		if l.mu != mu || l.pos >= pos {
			continue
		}
		if write && l.read {
			continue
		}
		return true
	}
	return false
}
