package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Ooppure protects entity identity. An oop.OOP is an immutable identity —
// "an object lives forever with that identity" (paper §5.4) — not a number:
//
//   - arithmetic, bitwise and shift operations on OOP values are forbidden
//     outside the oop package itself (which owns the tagged representation);
//   - reassigning an OOP-typed field of a struct declared in *another*
//     package (e.g. object.Object's OOP or Class from internal/core)
//     is forbidden outside constructor functions (New*/new*): once an
//     object exists, its identity and class binding are fixed.
//
// Packages may freely manage their own OOP-typed bookkeeping fields
// (caches, root registries); the boundary crossed is what makes an
// assignment identity mutation rather than bookkeeping.
//
// The exemptPaths arguments name the packages that implement the
// representation and are allowed to do arithmetic (normally just
// repro/internal/oop).
func Ooppure(exemptPaths ...string) *Analyzer {
	a := &Analyzer{
		Name: "ooppure",
		Doc:  "no arithmetic on oop.OOP; no cross-package reassignment of OOP identity fields",
	}
	a.Run = func(pass *Pass) { runOoppure(pass, exemptPaths) }
	return a
}

// isOOP reports whether t is the named type OOP from an oop package.
func isOOP(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "OOP" || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == "oop" || strings.HasSuffix(p, "/oop")
}

var arithOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.REM: true, token.AND: true, token.OR: true, token.XOR: true,
	token.AND_NOT: true, token.SHL: true, token.SHR: true,
}

var arithAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true, token.REM_ASSIGN: true, token.AND_ASSIGN: true,
	token.OR_ASSIGN: true, token.XOR_ASSIGN: true, token.AND_NOT_ASSIGN: true,
	token.SHL_ASSIGN: true, token.SHR_ASSIGN: true,
}

func runOoppure(pass *Pass, exemptPaths []string) {
	for _, p := range exemptPaths {
		if pass.Pkg.Path() == p {
			return
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inConstructor := strings.HasPrefix(fd.Name.Name, "New") || strings.HasPrefix(fd.Name.Name, "new")
			checkOoppureFunc(pass, fd, inConstructor)
		}
	}
}

func checkOoppureFunc(pass *Pass, fd *ast.FuncDecl, inConstructor bool) {
	oopOperand := func(e ast.Expr) bool {
		t := pass.Info.TypeOf(e)
		return t != nil && isOOP(t)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if arithOps[n.Op] && (oopOperand(n.X) || oopOperand(n.Y)) {
				pass.Reportf(n.OpPos, "arithmetic (%s) on oop.OOP: OOPs are opaque identities, not numbers; convert via the oop package's accessors", n.Op)
			}
		case *ast.IncDecStmt:
			if oopOperand(n.X) {
				pass.Reportf(n.Pos(), "%s on oop.OOP: OOPs are opaque identities, not counters", n.Tok)
			}
		case *ast.AssignStmt:
			if arithAssignOps[n.Tok] {
				for _, lhs := range n.Lhs {
					if oopOperand(lhs) {
						pass.Reportf(n.Pos(), "arithmetic assignment (%s) on oop.OOP: OOPs are opaque identities", n.Tok)
					}
				}
			}
			if n.Tok == token.ASSIGN && !inConstructor {
				for _, lhs := range n.Lhs {
					checkIdentityFieldWrite(pass, lhs)
				}
			}
		}
		return true
	})
}

// checkIdentityFieldWrite flags `x.F = v` where F is an OOP-typed field of
// a struct declared in a different package than the one being analyzed.
func checkIdentityFieldWrite(pass *Pass, lhs ast.Expr) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.Info.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() || !isOOP(obj.Type()) {
		return
	}
	if obj.Pkg() == nil || obj.Pkg() == pass.Pkg {
		return
	}
	pass.Reportf(lhs.Pos(), "reassignment of OOP identity field %s.%s declared in %s: identity is fixed at creation; build the object with the right identity instead",
		exprString(sel.X), sel.Sel.Name, obj.Pkg().Path())
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	}
	return "expr"
}
