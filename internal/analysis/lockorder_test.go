package analysis

import (
	"strings"
	"testing"
)

// The seeded deadlock: one call chain takes A then (via a helper) B, the
// other takes B then A. The analyzer must report ONE cycle finding whose
// message carries both witness chains.
const deadlockFixture = `package fx

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

type Sys struct {
	a A
	b B
}

func (s *Sys) lockB() {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
}

func (s *Sys) CommitPath() {
	s.a.mu.Lock()
	defer s.a.mu.Unlock()
	s.lockB()
}

func (s *Sys) ScrubPath() {
	s.b.mu.Lock()
	s.a.mu.Lock()
	s.a.mu.Unlock()
	s.b.mu.Unlock()
}
`

func TestLockorderCycle(t *testing.T) {
	got := checkFixture(t, "repro/fx", deadlockFixture, Lockorder())
	wantFindings(t, got, "lock-order cycle")
	msg := got[0].Message
	for _, witness := range []string{
		"fx.A.mu → fx.B.mu → fx.A.mu",
		"CommitPath", "lockB", "ScrubPath",
	} {
		if !strings.Contains(msg, witness) {
			t.Errorf("cycle message missing %q:\n%s", witness, msg)
		}
	}
}

// Consistent ordering on the same locks is clean.
const orderedFixture = `package fx

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

type Sys struct {
	a A
	b B
}

func (s *Sys) lockB() {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
}

func (s *Sys) One() {
	s.a.mu.Lock()
	defer s.a.mu.Unlock()
	s.lockB()
}

func (s *Sys) Two() {
	s.a.mu.Lock()
	s.b.mu.Lock()
	s.b.mu.Unlock()
	s.a.mu.Unlock()
}
`

func TestLockorderConsistentOrderClean(t *testing.T) {
	wantFindings(t, checkFixture(t, "repro/fx", orderedFixture, Lockorder()))
}

// Re-acquiring a held mutex through a call chain self-deadlocks.
const recursiveFixture = `package fx

import "sync"

type S struct{ mu sync.Mutex }

func (s *S) helper() {
	s.mu.Lock()
	s.mu.Unlock()
}

func (s *S) Outer() {
	s.mu.Lock()
	s.helper()
	s.mu.Unlock()
}
`

func TestLockorderRecursiveAcquire(t *testing.T) {
	got := checkFixture(t, "repro/fx", recursiveFixture, Lockorder())
	wantFindings(t, got, "re-acquired while already held")
	if !strings.Contains(got[0].Message, "helper") {
		t.Errorf("witness should name the re-acquiring callee:\n%s", got[0].Message)
	}
}

// A released lock is not held: Unlock before the second acquisition keeps
// the graph edge-free even position-wise.
const releasedFixture = `package fx

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

type Sys struct {
	a A
	b B
}

func (s *Sys) One() {
	s.a.mu.Lock()
	s.a.mu.Unlock()
	s.b.mu.Lock()
	s.b.mu.Unlock()
}

func (s *Sys) Two() {
	s.b.mu.Lock()
	s.b.mu.Unlock()
	s.a.mu.Lock()
	s.a.mu.Unlock()
}
`

func TestLockorderReleaseEndsHeldRange(t *testing.T) {
	wantFindings(t, checkFixture(t, "repro/fx", releasedFixture, Lockorder()))
}

// The cycle crossing a package boundary is still found: fxa holds its own
// lock and calls into fxb; fxb holds its lock and calls back into fxa.
func TestLockorderCrossPackageCycle(t *testing.T) {
	got := checkFixtures(t, []fixturePkg{
		{path: "repro/fxa", src: `package fxa

import "sync"

type Store struct{ Mu sync.Mutex }

func (s *Store) LockedOp() {
	s.Mu.Lock()
	defer s.Mu.Unlock()
}
`},
		{path: "repro/fxb", src: `package fxb

import (
	"sync"

	"repro/fxa"
)

type DB struct {
	mu sync.Mutex
	st *fxa.Store
}

func (d *DB) Commit() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.st.LockedOp()
}

func (d *DB) lockSelf() {
	d.mu.Lock()
	defer d.mu.Unlock()
}

// Back edge: fxa's lock held, then fxb's taken (via a local helper on
// the DB the store points back to — simulated directly here).
func Reverse(s *fxa.Store, d *DB) {
	s.Mu.Lock()
	d.lockSelf()
	s.Mu.Unlock()
}
`},
	}, Lockorder())
	wantFindings(t, got, "lock-order cycle")
	msg := got[0].Message
	if !strings.Contains(msg, "fxa.Store.Mu") || !strings.Contains(msg, "fxb.DB.mu") {
		t.Errorf("cross-package cycle should name both packages' locks:\n%s", msg)
	}
}

// A waiver on the reported edge suppresses the cycle.
func TestLockorderWaiver(t *testing.T) {
	waived := strings.Replace(deadlockFixture,
		"func (s *Sys) CommitPath() {\n\ts.a.mu.Lock()",
		"func (s *Sys) CommitPath() {\n\t//lint:ignore lockorder seeded fixture: instance order is pinned elsewhere\n\ts.a.mu.Lock()", 1)
	if waived == deadlockFixture {
		t.Fatal("replacement did not apply")
	}
	wantFindings(t, checkFixture(t, "repro/fx", waived, Lockorder()))
}
