package analysis

import "testing"

// sessionFixture is a miniature of internal/core's session shape: a DB
// handing out owned *Sessions and forked readers.
const sessionFixture = `package fx

type Session struct{ open bool }

func (s *Session) Close()              { s.open = false }
func (s *Session) Execute(src string) error { return nil }
func (s *Session) ForkReader() *Session { return &Session{open: true} }

type DB struct{}

func (db *DB) NewSession(user, password string) (*Session, error) {
	return &Session{open: true}, nil
}

func (db *DB) AbsorbReads(fork *Session) {}
`

// TestSessionlifeLeak: a session that misses Close on an error path leaks
// (the gemstone.Open/CreateUser bootstrap bug class).
func TestSessionlifeLeak(t *testing.T) {
	got := checkFixture(t, "fixt/sess", sessionFixture+`

func Leaky(db *DB) error {
	s, err := db.NewSession("u", "p")
	if err != nil {
		return err
	}
	if err := s.Execute("doIt"); err != nil {
		return err // leak: s never closed
	}
	s.Close()
	return nil
}
`, Sessionlife())
	wantFindings(t, got, "not closed on every path")
}

// TestSessionlifeClean: deferred closes, absorbed forks, and ownership
// transfer by return are all clean.
func TestSessionlifeClean(t *testing.T) {
	got := checkFixture(t, "fixt/sessclean", sessionFixture+`

func Deferred(db *DB) error {
	s, err := db.NewSession("u", "p")
	if err != nil {
		return err
	}
	defer s.Close()
	return s.Execute("doIt")
}

func Forked(db *DB, s *Session) error {
	fork := s.ForkReader()
	if err := fork.Execute("scan"); err != nil {
		fork.Close()
		return err
	}
	db.AbsorbReads(fork)
	return nil
}

func Transfer(db *DB) (*Session, error) {
	return db.NewSession("u", "p") // ownership moves to the caller
}

func TransferVar(db *DB) (*Session, error) {
	s, err := db.NewSession("u", "p")
	if err != nil {
		return nil, err
	}
	return s, nil // ownership moves to the caller
}

func VoidGuard(db *DB) {
	s, err := db.NewSession("u", "p")
	if err != nil {
		return // the guard's bare return: s is nil here, not leaked
	}
	defer s.Close()
	s.Execute("doIt")
}

type Wrapper struct{ s *Session }

func TransferWrapped(db *DB) (*Wrapper, error) {
	s, err := db.NewSession("u", "p")
	if err != nil {
		return nil, err
	}
	return &Wrapper{s: s}, nil // ownership moves into the returned wrapper
}
`, Sessionlife())
	wantFindings(t, got)
}

// TestSessionlifeUseAfterClose: executing on a closed session is a
// finding; so is a forked reader that is neither absorbed nor closed.
func TestSessionlifeUseAfterClose(t *testing.T) {
	got := checkFixture(t, "fixt/sessuse", sessionFixture+`

func UseAfterClose(db *DB) error {
	s, err := db.NewSession("u", "p")
	if err != nil {
		return err
	}
	s.Close()
	return s.Execute("late") // use after close
}

func ForkLeak(s *Session) error {
	fork := s.ForkReader()
	return fork.Execute("scan") // fork neither absorbed nor closed
}
`, Sessionlife())
	wantFindings(t, got,
		"after it was already closed",
		"not closed on every path")
}

// TestSessionlifeWaiver: a session deliberately left open for the process
// lifetime is waiverable at the birth site.
func TestSessionlifeWaiver(t *testing.T) {
	got := checkFixture(t, "fixt/sesswaiver", sessionFixture+`

func StartMonitor(db *DB) error {
	//lint:ignore sessionlife the monitor session lives for the process lifetime; closed on shutdown
	s, err := db.NewSession("monitor", "p")
	if err != nil {
		return err
	}
	return s.Execute("watch") // deliberately left open
}
`, Sessionlife())
	wantFindings(t, got)
}

// TestSessionlifeCloseWrapper: a helper that closes its parameter on every
// return counts as the close (the consume summary).
func TestSessionlifeCloseWrapper(t *testing.T) {
	got := checkFixture(t, "fixt/sesswrap", sessionFixture+`

func shutdown(s *Session) {
	s.Close()
}

func Clean(db *DB) error {
	s, err := db.NewSession("u", "p")
	if err != nil {
		return err
	}
	err = s.Execute("doIt")
	shutdown(s)
	return err
}
`, Sessionlife())
	wantFindings(t, got)
}
