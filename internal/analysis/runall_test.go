package analysis

import (
	"fmt"
	"strings"
	"testing"
)

// TestRunAllDeterministic: the parallel driver's output is byte-identical
// to the serial loop, including the whole-program analyzers whose Once
// phase races across packages. Several fixture packages with cross-package
// findings force real fan-out.
func TestRunAllDeterministic(t *testing.T) {
	var fixtures []fixturePkg
	for i := 0; i < 8; i++ {
		fixtures = append(fixtures, fixturePkg{
			path: fmt.Sprintf("fixt/det%d", i),
			src: fmt.Sprintf(`package det%d

import "sync"

var pool = sync.Pool{New: func() any { return new([]byte) }}

func Leaky(fail bool) int {
	buf := pool.Get().(*[]byte)
	if fail {
		return 0 // leak
	}
	pool.Put(buf)
	return 1
}

func UseAfter() int {
	buf := pool.Get().(*[]byte)
	pool.Put(buf)
	return len(*buf)
}
`, i),
		})
	}

	analyzers := []*Analyzer{Bufown(), Sessionlife(), Ctxflow()}
	render := func(workers int) string {
		pkgs := fixturePackages(t, fixtures)
		prog := BuildProgram(pkgs)
		var sb strings.Builder
		for _, f := range RunAll(analyzers, prog, pkgs, workers, nil) {
			fmt.Fprintf(&sb, "%d:%d %s %s\n", f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
		return sb.String()
	}

	serial := render(1)
	if !strings.Contains(serial, "not returned to its pool") {
		t.Fatalf("fixture produced no findings:\n%s", serial)
	}
	for trial := 0; trial < 4; trial++ {
		if parallel := render(8); parallel != serial {
			t.Fatalf("parallel output diverges from serial (trial %d):\n--- serial ---\n%s--- parallel ---\n%s", trial, serial, parallel)
		}
	}
}

// TestRunAllTiming: the timing table records every analyzer that ran.
func TestRunAllTiming(t *testing.T) {
	pkgs := fixturePackages(t, []fixturePkg{{path: "fixt/timing", src: `package timing

func F() {}
`}})
	prog := BuildProgram(pkgs)
	table := NewTimingTable()
	RunAll([]*Analyzer{Bufown(), Ctxflow()}, prog, pkgs, 2, table)
	rows := table.Rows()
	if len(rows) != 2 {
		t.Fatalf("got %d timing rows, want 2: %v", len(rows), rows)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Analyzer] = true
	}
	if !seen["bufown"] || !seen["ctxflow"] {
		t.Fatalf("timing rows missing analyzers: %v", rows)
	}
}
