package analysis

import "testing"

// ctxFixture gives the fixtures a ctx-taking callee to thread into.
const ctxFixture = `package fx

import "context"

func Run(ctx context.Context, src string) error { return ctx.Err() }
`

// TestCtxflowFreshRoot: minting a fresh root below an entry point sheds the
// caller's deadline.
func TestCtxflowFreshRoot(t *testing.T) {
	got := checkFixture(t, "fixt/ctx", ctxFixture+`

func Handler(ctx context.Context, src string) error {
	return Run(context.Background(), src) // sheds ctx's deadline
}

func Retry(ctx context.Context, src string) error {
	return Run(context.TODO(), src)
}
`, Ctxflow())
	wantFindings(t, got,
		"context.Background() called in fx.Handler",
		"context.TODO() called in fx.Retry")
}

// TestCtxflowNilCtx: a literal nil in a context-typed parameter position.
func TestCtxflowNilCtx(t *testing.T) {
	got := checkFixture(t, "fixt/ctxnil", ctxFixture+`

func Handler(ctx context.Context, src string) error {
	return Run(nil, src)
}
`, Ctxflow())
	wantFindings(t, got, "nil passed as the context to Run() in fx.Handler")
}

// TestCtxflowDropped: a ctx parameter never read while the body calls a
// context-taking callee breaks the chain at this link.
func TestCtxflowDropped(t *testing.T) {
	got := checkFixture(t, "fixt/ctxdrop", ctxFixture+`

var rootCtx = context.Background()

func Handler(ctx context.Context, src string) error {
	return Run(rootCtx, src) // threads a stale root, not the caller's ctx
}
`, Ctxflow())
	wantFindings(t, got, "fx.Handler receives ctx but never reads it")
}

// TestCtxflowClean: threading ctx, deriving from it, closures inheriting it
// lexically, entry points without a ctx param, and literals declaring their
// own ctx are all clean.
func TestCtxflowClean(t *testing.T) {
	got := checkFixture(t, "fixt/ctxclean", `package fx

import (
	"context"
	"time"
)

func Run(ctx context.Context, src string) error { return ctx.Err() }

func Threads(ctx context.Context, src string) error {
	return Run(ctx, src)
}

func Derives(ctx context.Context, src string) error {
	tctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return Run(tctx, src)
}

func ClosureInherits(ctx context.Context, src string) func() error {
	return func() error { return Run(ctx, src) }
}

func OwnParam(ctx context.Context, src string) func(context.Context) error {
	_ = ctx.Err()
	return func(inner context.Context) error { return Run(inner, src) }
}

func EntryPoint(src string) error {
	return Run(context.Background(), src) // no ctx param: a legitimate root
}

func NoCtxCallees(ctx context.Context, n int) int {
	return n * 2 // ctx unused, but nothing to thread it into
}
`, Ctxflow())
	wantFindings(t, got)
}

// TestCtxflowWaiver: a deliberately detached janitor is waiverable.
func TestCtxflowWaiver(t *testing.T) {
	got := checkFixture(t, "fixt/ctxwaiver", ctxFixture+`

func Handler(ctx context.Context, src string) error {
	//lint:ignore ctxflow the janitor outlives the request on purpose
	jctx := context.Background()
	go Run(jctx, "janitor")
	return Run(ctx, src)
}
`, Ctxflow())
	wantFindings(t, got)
}
