package analysis

import (
	"go/ast"
	"go/token"
)

// cfg.go builds a per-function control-flow graph over the raw AST — the
// foundation of the path-sensitive analyzers (unlockpath, errflow). The
// graph is deliberately statement-grained: each Block carries the leaf
// statements and control expressions that execute in order when the block
// runs, and edges follow every branch, loop back edge, early return,
// explicit panic, goto, break/continue (labeled or not), switch
// fallthrough and select arm.
//
// Shape rules:
//
//   - Exit is a single synthetic block. Every return statement, explicit
//     panic(...) statement and fall-off-the-end path gets an edge to it,
//     so "all paths out of the function" is exactly "all predecessors of
//     Exit", and each predecessor's Term says which kind of exit it is.
//   - Function literals are NOT inlined: a *ast.FuncLit is its own
//     function with its own CFG. Blocks never contain the literal's inner
//     statements; analyzers walking block nodes must prune FuncLit
//     subtrees (nodeWalk does this).
//   - defer and go statements appear as ordinary nodes (the *ast.DeferStmt
//     / *ast.GoStmt wrapper is kept) at their registration/spawn point;
//     what the deferred or spawned call does is the analyzer's business.
//   - Unreachable code after a return/branch is parked in a fresh block
//     with no predecessors, so its nodes still exist but carry no flow.
//   - A switch clause reached by fallthrough re-uses the next clause's
//     body block; the (constant) case expressions at its head are treated
//     as evaluated, a harmless over-approximation.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block // creation order; Blocks[i].Index == i
}

// Block is one straight-line run of nodes.
type Block struct {
	Index int
	Nodes []ast.Node // leaf statements and control exprs, execution order
	Succs []*Block
	Preds []*Block
	// Term is why control leaves the function from this block:
	// *ast.ReturnStmt for a return, *ast.CallExpr for an explicit
	// panic(...), nil otherwise (including the implicit fall-off-the-end
	// edge into Exit).
	Term ast.Node
}

// ExitPreds returns the blocks from which the function exits, in index
// order — one per return/panic/fall-off path.
func (c *CFG) ExitPreds() []*Block {
	out := make([]*Block, len(c.Exit.Preds))
	copy(out, c.Exit.Preds)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Index > out[j].Index; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// CFGOf returns the control-flow graph of f's body, built on first use
// and cached for every analyzer in the run. Safe for concurrent passes;
// construction is serialized, which is cheap (one AST walk per body) next
// to the flow analyses run over the result.
func (p *Program) CFGOf(f *Func) *CFG {
	p.cfgMu.Lock()
	defer p.cfgMu.Unlock()
	if p.cfgs == nil {
		p.cfgs = make(map[*Func]*CFG)
	}
	if c, ok := p.cfgs[f]; ok {
		return c
	}
	c := buildCFG(f.Body)
	p.cfgs[f] = c
	return c
}

// branchTarget is one open break/continue scope.
type branchTarget struct {
	label string
	blk   *Block
}

type cfgBuilder struct {
	cfg          *CFG
	cur          *Block // nil after a terminator: following code is unreachable
	breaks       []branchTarget
	continues    []branchTarget
	falls        []*Block          // fallthrough targets, innermost last
	labels       map[string]*Block // goto / labeled-statement entry blocks
	pendingLabel string            // set by LabeledStmt for the next loop/switch
}

func buildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: make(map[string]*Block)}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	// The implicit fall-off-the-end edge — but only if the end is
	// reachable: after `for {}` or a select whose every arm returns, the
	// dangling after-block has no predecessors and is no way out.
	if b.cur != nil && (b.cur == b.cfg.Entry || len(b.cur.Preds) > 0) {
		b.edge(b.cur, b.cfg.Exit)
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block, reviving an unreachable block
// for dead code so every statement lives somewhere.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// takeLabel consumes the label a LabeledStmt attached to the construct
// being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// exit terminates the current block into Exit with the given terminator.
func (b *cfgBuilder) exit(term ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Term = term
	b.edge(b.cur, b.cfg.Exit)
	b.cur = nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// panicCall recognizes an explicit panic(...) expression statement.
func panicCall(x ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return nil
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		return call
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable code keeps its own block
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.exit(s)
	case *ast.ExprStmt:
		if call := panicCall(s.X); call != nil {
			b.add(s)
			b.exit(call)
			return
		}
		b.add(s)
	default:
		// Assignments, declarations, defer/go, sends, inc/dec, empty.
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	then := b.newBlock()
	b.edge(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	thenEnd := b.cur

	elseEnd := cond // no else: the false edge falls through
	if s.Else != nil {
		els := b.newBlock()
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		elseEnd = b.cur
	}
	if thenEnd == nil && elseEnd == nil {
		b.cur = nil
		return
	}
	join := b.newBlock()
	if thenEnd != nil {
		b.edge(thenEnd, join)
	}
	if elseEnd != nil {
		b.edge(elseEnd, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	b.edge(b.cur, head)
	b.cur = head
	after := b.newBlock()
	if s.Cond != nil {
		b.add(s.Cond)
		b.edge(head, after) // condition-false exit; `for {}` has none
	}
	post := head // continue target when there is no post statement
	if s.Post != nil {
		post = b.newBlock()
	}
	body := b.newBlock()
	b.edge(head, body)
	b.breaks = append(b.breaks, branchTarget{label, after})
	b.continues = append(b.continues, branchTarget{label, post})
	b.cur = body
	b.stmtList(s.Body.List)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	if b.cur != nil {
		b.edge(b.cur, post)
	}
	if s.Post != nil {
		b.cur = post
		b.add(s.Post)
		b.edge(post, head)
	}
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock()
	b.edge(b.cur, head)
	b.cur = head
	// The range expression and the per-iteration key/value assignment
	// both live in the head; the RangeStmt wrapper itself is not a node
	// (its Body would leak into the block).
	b.add(s.X)
	after := b.newBlock()
	b.edge(head, after)
	body := b.newBlock()
	b.edge(head, body)
	b.breaks = append(b.breaks, branchTarget{label, after})
	b.continues = append(b.continues, branchTarget{label, head})
	b.cur = body
	b.stmtList(s.Body.List)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.cur = after
}

// switchStmt covers expression switches (tag != nil, possibly nil tag for
// `switch { ... }`) and type switches (assign != nil).
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	entry := b.cur
	after := b.newBlock()

	var clauses []*ast.CaseClause
	for _, s := range body.List {
		clauses = append(clauses, s.(*ast.CaseClause))
	}
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		bodies[i] = b.newBlock()
		b.edge(entry, bodies[i])
		if c.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(entry, after)
	}
	b.breaks = append(b.breaks, branchTarget{label, after})
	for i, c := range clauses {
		b.cur = bodies[i]
		for _, e := range c.List {
			b.add(e)
		}
		var fall *Block
		if i+1 < len(bodies) {
			fall = bodies[i+1]
		}
		b.falls = append(b.falls, fall)
		b.stmtList(c.Body)
		b.falls = b.falls[:len(b.falls)-1]
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	entry := b.cur
	after := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label, after})
	for _, cs := range s.Body.List {
		c := cs.(*ast.CommClause)
		arm := b.newBlock()
		b.edge(entry, arm)
		b.cur = arm
		if c.Comm != nil {
			b.stmt(c.Comm)
		}
		b.stmtList(c.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	// A select with no runnable arm blocks forever; `after` is reachable
	// only through an arm, which is exactly the semantics.
	b.cur = after
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	lb := b.labels[s.Label.Name]
	if lb == nil {
		lb = b.newBlock()
		b.labels[s.Label.Name] = lb
	}
	if b.cur != nil {
		b.edge(b.cur, lb)
	}
	b.cur = lb
	b.pendingLabel = s.Label.Name
	b.stmt(s.Stmt)
	b.pendingLabel = ""
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	find := func(stack []branchTarget) *Block {
		for i := len(stack) - 1; i >= 0; i-- {
			if label == "" || stack[i].label == label {
				return stack[i].blk
			}
		}
		return nil
	}
	switch s.Tok {
	case token.BREAK:
		if t := find(b.breaks); t != nil {
			b.edge(b.cur, t)
		}
		b.cur = nil
	case token.CONTINUE:
		if t := find(b.continues); t != nil {
			b.edge(b.cur, t)
		}
		b.cur = nil
	case token.GOTO:
		lb := b.labels[label]
		if lb == nil {
			lb = b.newBlock() // forward goto: target filled in when reached
			b.labels[label] = lb
		}
		b.edge(b.cur, lb)
		b.cur = nil
	case token.FALLTHROUGH:
		if len(b.falls) > 0 && b.falls[len(b.falls)-1] != nil {
			b.edge(b.cur, b.falls[len(b.falls)-1])
		}
		b.cur = nil
	}
}

// nodeWalk visits n and its children in source order, pruning function
// literal bodies (they are their own functions with their own CFGs), and
// calls fn on every node it keeps. It is the traversal every CFG-based
// analyzer uses to read a block's nodes.
func nodeWalk(n ast.Node, fn func(ast.Node) bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if _, ok := c.(*ast.FuncLit); ok {
			fn(c) // the literal itself is visible (creation point) ...
			return false // ... its body is not
		}
		return fn(c)
	})
}
