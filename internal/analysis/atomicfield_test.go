package analysis

import (
	"strings"
	"testing"
)

// Mixed discipline: n is incremented atomically but read plainly — the
// plain read is the finding; the atomic sites and the composite-literal
// initialization are not.
const atomicMixedFixture = `package fx

import "sync/atomic"

type Counter struct {
	n    uint64
	safe uint64
}

func New() *Counter {
	return &Counter{n: 0, safe: 0}
}

func (c *Counter) Inc() {
	atomic.AddUint64(&c.n, 1)
	atomic.AddUint64(&c.safe, 1)
}

func (c *Counter) Bad() uint64 {
	return c.n
}

func (c *Counter) Good() uint64 {
	return atomic.LoadUint64(&c.safe)
}
`

func TestAtomicfieldMixedAccess(t *testing.T) {
	got := checkFixture(t, "repro/fx", atomicMixedFixture, Atomicfield())
	wantFindings(t, got, "plain access to n")
	if !strings.Contains(got[0].Message, "accessed via sync/atomic at") {
		t.Errorf("finding should cite the atomic witness site:\n%s", got[0].Message)
	}
}

// All-atomic access and atomic.Uint64-typed fields are clean.
const atomicCleanFixture = `package fx

import "sync/atomic"

type Counter struct {
	n     uint64
	typed atomic.Uint64
}

func (c *Counter) Inc() {
	atomic.AddUint64(&c.n, 1)
	c.typed.Add(1)
}

func (c *Counter) Load() uint64 {
	return atomic.LoadUint64(&c.n) + c.typed.Load()
}
`

func TestAtomicfieldAllAtomicClean(t *testing.T) {
	wantFindings(t, checkFixture(t, "repro/fx", atomicCleanFixture, Atomicfield()))
}

// Package-level variables follow the same discipline as fields.
const atomicPkgVarFixture = `package fx

import "sync/atomic"

var hits uint64

func Inc() {
	atomic.AddUint64(&hits, 1)
}

func Read() uint64 {
	return hits
}
`

func TestAtomicfieldPackageVar(t *testing.T) {
	got := checkFixture(t, "repro/fx", atomicPkgVarFixture, Atomicfield())
	wantFindings(t, got, "plain access to hits")
}

// The discipline is program-wide: a field updated atomically in its own
// package and read plainly from another is flagged at the plain read.
func TestAtomicfieldCrossPackage(t *testing.T) {
	got := checkFixtures(t, []fixturePkg{
		{path: "repro/fxa", src: `package fxa

import "sync/atomic"

type Stats struct {
	Ops uint64
}

func (s *Stats) Inc() {
	atomic.AddUint64(&s.Ops, 1)
}
`},
		{path: "repro/fxb", src: `package fxb

import "repro/fxa"

func Snapshot(s *fxa.Stats) uint64 {
	return s.Ops
}
`},
	}, Atomicfield())
	wantFindings(t, got, "plain access to Ops")
	if !strings.Contains(got[0].Pos.Filename, "fixture1.go") {
		t.Errorf("the finding should land in fxb's file, got %s", got[0].Pos.Filename)
	}
}

// A waiver documents an intentional non-atomic access (e.g. a read under
// a lock that orders all writers).
func TestAtomicfieldWaiver(t *testing.T) {
	waived := strings.Replace(atomicMixedFixture,
		"\treturn c.n\n}",
		"\t//lint:ignore atomicfield read happens before any goroutine starts\n\treturn c.n\n}", 1)
	if waived == atomicMixedFixture {
		t.Fatal("replacement did not apply")
	}
	wantFindings(t, checkFixture(t, "repro/fx", waived, Atomicfield()))
}
