package analysis

import "testing"

const locksafeFixture = `package fx

import "sync"

type Cache struct {
	mu    sync.RWMutex // guards items, hits
	items map[int]int
	hits  int
	name  string
}

func (c *Cache) Good(k int) (int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.items[k]
	return v, ok
}

func (c *Cache) GoodWrite(k, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.items[k] = v
	c.hits++
}

func (c *Cache) BadRead() int { return c.hits }

func (c *Cache) BadWriteUnderRLock(k, v int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.items[k] = v
}

func (c *Cache) bumpLocked() { c.hits++ }

func (c *Cache) Name() string { return c.name }

type Reg struct {
	lk sync.Mutex
	n  int // guarded by lk
}

func (r *Reg) BadPeek() int { return r.n }

func (r *Reg) Good() int {
	r.lk.Lock()
	defer r.lk.Unlock()
	return r.n
}
`

func TestLocksafe(t *testing.T) {
	got := checkFixture(t, "repro/internal/fx", locksafeFixture, Locksafe())
	wantFindings(t, got,
		"read of c.hits without c.mu.Lock",       // BadRead
		"write of c.items without c.mu.Lock",     // RLock does not license writes
		"read of r.n without r.lk.Lock or RLock", // guarded-by form
	)
}

func TestLocksafeUnknownFieldInAnnotation(t *testing.T) {
	src := `package fx

import "sync"

type S struct {
	mu sync.Mutex // guards bogus
	n  int
}
`
	got := checkFixture(t, "repro/internal/fx", src, Locksafe())
	wantFindings(t, got, "bogus")
}
