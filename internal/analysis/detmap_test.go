package analysis

import "testing"

const detmapFixture = `package fx

import "sort"

func Bad(m map[string]int) []string {
	var out []string
	for k, v := range m {
		if v > 0 {
			out = append(out, k)
		}
	}
	return out
}

func GoodSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func GoodTransfer(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

func GoodNested(groups map[string]map[string]int) []string {
	var keys []string
	for _, g := range groups {
		for k := range g {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

func BadCollectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

func GoodSliceRange(xs []string) int {
	n := 0
	for range xs {
		n++
	}
	return n
}
`

func TestDetmap(t *testing.T) {
	got := checkFixture(t, "repro/internal/store", detmapFixture,
		Detmap("repro/internal/store"))
	wantFindings(t, got,
		"iteration over map", // Bad: appends under a condition, no sort
		"iteration over map", // BadCollectNoSort: collected but never sorted
	)
	if got[0].Pos.Line != 7 || got[1].Pos.Line != 43 {
		t.Errorf("findings at lines %d and %d, want 7 and 43:\n%s",
			got[0].Pos.Line, got[1].Pos.Line, renderFindings(got))
	}
}
