package analysis

import (
	"go/ast"
	"go/types"
)

// Detmap flags `range` over a map in serialization / commit / wire
// packages: Go randomizes map iteration order, and anything it feeds into
// track images, commit batches or replication streams would differ from
// run to run, breaking byte-determinism of the store (a track group must
// re-encode identically for replica comparison and recovery audits).
//
// Two shapes are recognized as safe without a suppression:
//
//  1. Key collection followed by a sort: the loop body only appends to
//     local slices, and each such slice is later passed to a sort.* /
//     slices.Sort* call in the same function.
//  2. Pure map-to-map transfer: every statement in the body is an
//     assignment whose targets are map index expressions (dst[k] = v),
//     which is order-independent.
//
// Anything else needs sorted keys or an explicit
// //lint:ignore detmap <reason>.
func Detmap(paths ...string) *Analyzer {
	a := &Analyzer{
		Name:  "detmap",
		Doc:   "no unordered map iteration on serialization/commit/wire paths",
		Paths: paths,
	}
	a.Run = func(pass *Pass) { runDetmap(pass) }
	return a
}

func runDetmap(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDetmapBody(pass, fd.Body)
		}
	}
}

func checkDetmapBody(pass *Pass, body *ast.BlockStmt) {
	walkStmts(pass, body.List, nil)
}

// walkStmts visits each statement; tail carries the statements that follow
// the enclosing statement in *its* list, so a range loop nested inside
// another loop can still find the sort call that follows the outer loop.
func walkStmts(pass *Pass, stmts []ast.Stmt, tail []ast.Stmt) {
	for i, s := range stmts {
		following := make([]ast.Stmt, 0, len(stmts)-i-1+len(tail))
		following = append(following, stmts[i+1:]...)
		following = append(following, tail...)
		walkStmt(pass, s, following)
	}
}

func walkStmt(pass *Pass, s ast.Stmt, following []ast.Stmt) {
	switch n := s.(type) {
	case *ast.LabeledStmt:
		walkStmt(pass, n.Stmt, following)
	case *ast.BlockStmt:
		walkStmts(pass, n.List, following)
	case *ast.IfStmt:
		walkStmts(pass, n.Body.List, following)
		if n.Else != nil {
			walkStmt(pass, n.Else, following)
		}
	case *ast.ForStmt:
		walkStmts(pass, n.Body.List, following)
	case *ast.RangeStmt:
		checkRange(pass, n, following)
		walkStmts(pass, n.Body.List, following)
	case *ast.SwitchStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkStmts(pass, cc.Body, following)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkStmts(pass, cc.Body, following)
			}
		}
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				walkStmts(pass, cc.Body, following)
			}
		}
	default:
		// Function literals inside expressions get their own context.
		ast.Inspect(s, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				walkStmts(pass, fl.Body.List, nil)
				return false
			}
			return true
		})
	}
}

func checkRange(pass *Pass, rs *ast.RangeStmt, following []ast.Stmt) {
	t := pass.Info.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if collectThenSorted(pass, rs, following) || pureMapTransfer(pass, rs) {
		return
	}
	pass.Reportf(rs.Pos(), "iteration over map %s is non-deterministic; sort the keys first (commit batches, track images and wire streams must be byte-deterministic)", types.TypeString(t, types.RelativeTo(pass.Pkg)))
}

// collectThenSorted recognizes: the loop (possibly through nested loops
// and conditionals) only appends to local slices, and every such slice is
// sorted afterwards in the statements following the loop.
func collectThenSorted(pass *Pass, rs *ast.RangeStmt, following []ast.Stmt) bool {
	collected, ok := collectAppends(rs.Body.List)
	if !ok || len(collected) == 0 {
		return false
	}
	for _, c := range collected {
		obj := pass.Info.Uses[c]
		if obj == nil {
			obj = pass.Info.Defs[c]
		}
		if obj == nil || !sortedAfter(pass, obj, following) {
			return false
		}
	}
	return true
}

// collectAppends reports whether every statement is an append into a local
// slice (x = append(x, ...)) or a nested loop/conditional of such
// statements, returning the appended-to identifiers.
func collectAppends(stmts []ast.Stmt) ([]*ast.Ident, bool) {
	var out []*ast.Ident
	for _, st := range stmts {
		switch n := st.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return nil, false
			}
			lhs, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return nil, false
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return nil, false
			}
			fun, ok := call.Fun.(*ast.Ident)
			if !ok || fun.Name != "append" || len(call.Args) < 1 {
				return nil, false
			}
			dst, ok := call.Args[0].(*ast.Ident)
			if !ok || dst.Name != lhs.Name {
				return nil, false
			}
			out = append(out, lhs)
		case *ast.RangeStmt:
			sub, ok := collectAppends(n.Body.List)
			if !ok {
				return nil, false
			}
			out = append(out, sub...)
		case *ast.ForStmt:
			sub, ok := collectAppends(n.Body.List)
			if !ok {
				return nil, false
			}
			out = append(out, sub...)
		case *ast.IfStmt:
			sub, ok := collectAppends(n.Body.List)
			if !ok {
				return nil, false
			}
			out = append(out, sub...)
		default:
			return nil, false
		}
	}
	return out, true
}

// sortedAfter reports whether obj appears as an argument to a sort.* or
// slices.Sort* call in the given statements.
func sortedAfter(pass *Pass, obj types.Object, stmts []ast.Stmt) bool {
	found := false
	for _, st := range stmts {
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Info.Uses[pkgIdent].(*types.PkgName)
			if !ok {
				return true
			}
			if p := pn.Imported().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := arg.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// pureMapTransfer recognizes a body whose statements are all assignments
// into map index expressions (dst[k] = v): per-key writes commute, so the
// iteration order cannot be observed.
func pureMapTransfer(pass *Pass, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	for _, st := range rs.Body.List {
		as, ok := st.(*ast.AssignStmt)
		if !ok {
			return false
		}
		for _, lhs := range as.Lhs {
			ix, ok := lhs.(*ast.IndexExpr)
			if !ok {
				return false
			}
			t := pass.Info.TypeOf(ix.X)
			if t == nil {
				return false
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return false
			}
		}
		// The values must not themselves involve calls with side effects;
		// permit only call-free right-hand sides.
		for _, rhs := range as.Rhs {
			hasCall := false
			ast.Inspect(rhs, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					// Type conversions are fine; anything else is a call.
					if !isTypeConversion(pass, call) {
						hasCall = true
					}
				}
				return !hasCall
			})
			if hasCall {
				return false
			}
		}
	}
	return true
}

func isTypeConversion(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call.Fun]
	return ok && tv.IsType()
}
