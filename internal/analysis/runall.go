package analysis

import (
	"sort"
	"sync"
	"time"
)

// runall.go is the parallel driver: one gslint run fans the per-package
// passes across workers while keeping the output byte-identical to a serial
// run. The contract that makes this safe and deterministic:
//
//   - whole-program phases behind Prog.Once are single-flight (the first
//     pass to ask computes, concurrent passes block on the same entry), so
//     the global phase still runs exactly once;
//   - CFGOf serializes graph construction under its own mutex;
//   - everything else a pass touches (ASTs, types.Info, the resolved call
//     graph) is read-only after BuildProgram;
//   - findings are collected per package into a slice indexed by the
//     package's load position and concatenated in that order, so worker
//     scheduling cannot reorder output. Each package's own findings are
//     already position-sorted by RunAnalyzers.

// TimingRow is one analyzer's cumulative wall time across every package it
// ran on. With workers > 1 the times overlap, so the column sums to more
// than the run's wall clock — it ranks where the cycles go, it is not a
// latency budget.
type TimingRow struct {
	Analyzer string
	Elapsed  time.Duration
}

// TimingTable accumulates per-analyzer wall time; safe for concurrent
// passes.
type TimingTable struct {
	mu sync.Mutex
	d  map[string]time.Duration
}

func NewTimingTable() *TimingTable {
	return &TimingTable{d: make(map[string]time.Duration)}
}

func (t *TimingTable) add(name string, d time.Duration) {
	t.mu.Lock()
	t.d[name] += d
	t.mu.Unlock()
}

// Rows returns the table sorted by descending elapsed time, ties by name.
func (t *TimingTable) Rows() []TimingRow {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TimingRow, 0, len(t.d))
	for name, d := range t.d {
		out = append(out, TimingRow{Analyzer: name, Elapsed: d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Elapsed != out[j].Elapsed {
			return out[i].Elapsed > out[j].Elapsed
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// RunAll applies the analyzers to every package of prog using up to workers
// concurrent passes and returns the surviving findings in package load
// order. workers <= 1 degenerates to the serial loop; the output is
// byte-identical either way. A non-nil timing table receives each
// analyzer's cumulative wall time.
func RunAll(analyzers []*Analyzer, prog *Program, pkgs []*Package, workers int, timing *TimingTable) []Finding {
	if timing != nil {
		analyzers = timedAnalyzers(analyzers, timing)
	}
	if workers <= 1 || len(pkgs) <= 1 {
		var all []Finding
		for _, pkg := range pkgs {
			all = append(all, RunAnalyzers(analyzers, prog, pkg)...)
		}
		return all
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	perPkg := make([][]Finding, len(pkgs))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				perPkg[i] = RunAnalyzers(analyzers, prog, pkgs[i])
			}
		}()
	}
	for i := range pkgs {
		next <- i
	}
	close(next)
	wg.Wait()
	var all []Finding
	for _, fs := range perPkg {
		all = append(all, fs...)
	}
	return all
}

// timedAnalyzers wraps each analyzer so its Run records elapsed wall time.
// The wrappers keep Name/Doc/Paths, so scoping and suppression matching see
// the analyzers unchanged.
func timedAnalyzers(analyzers []*Analyzer, timing *TimingTable) []*Analyzer {
	out := make([]*Analyzer, len(analyzers))
	for i, a := range analyzers {
		orig := a
		wrapped := *a
		wrapped.Run = func(pass *Pass) {
			start := time.Now()
			orig.Run(pass)
			timing.add(orig.Name, time.Since(start))
		}
		out[i] = &wrapped
	}
	return out
}
