package analysis

import (
	"strings"
	"testing"
)

// The seeded bug: a package-level counter mutated at runtime — shared by
// every shard the moment there are two.
const globalstateFixture = `package fx

var hits int

func Touch() {
	hits++
}
`

func TestGlobalstateFires(t *testing.T) {
	got := checkFixture(t, "repro/internal/wire", globalstateFixture, Globalstate())
	wantFindings(t, got, "package-level var hits is mutable state (increment at fixture.go:6)")
}

func TestGlobalstateMutationShapes(t *testing.T) {
	src := `package fx

type registry struct{ m map[string]int }

func (r *registry) add(k string) { r.m[k] = 1 }

var (
	reg     = registry{m: map[string]int{}}
	byName  = map[string]int{}
	current *registry
)

func Register(k string) {
	reg.add(k)       // pointer-receiver call on a value-typed global
	byName[k] = 1    // element write through a value-typed global
	current = &reg   // reassignment of a pointer-typed global
}
`
	got := checkFixture(t, "repro/internal/wire", src, Globalstate())
	wantFindings(t, got,
		"package-level var reg is mutable state (address taken at fixture.go:16, pointer-receiver call add at fixture.go:14)",
		"package-level var byName is mutable state (element/field write at fixture.go:15)",
		"package-level var current is mutable state (reassignment at fixture.go:16)",
	)
}

func TestGlobalstateCleanVariants(t *testing.T) {
	src := `package fx

import (
	"regexp"
	"sync"
)

// Initialized at declaration or in init(), read-only afterwards.
var names = map[string]int{"a": 1}

var limit int

func init() {
	limit = 64
	names["b"] = 2
}

// Pointer-typed globals used through their methods mutate the target
// object, which has its own discipline — only reassignment would fire.
var wordRe = regexp.MustCompile(` + "`\\w+`" + `)

// Synchronization primitives are the sanctioned global idiom.
var mu sync.Mutex

func Lookup(s string) int {
	mu.Lock()
	defer mu.Unlock()
	if wordRe.MatchString(s) {
		return names[s]
	}
	return limit
}
`
	if got := checkFixture(t, "repro/internal/wire", src, Globalstate()); len(got) != 0 {
		t.Fatalf("clean fixture produced findings:\n%s", renderFindings(got))
	}
}

func TestGlobalstateRegistryWaiver(t *testing.T) {
	waived := strings.Replace(globalstateFixture, "var hits int",
		"//lint:ignore globalstate demonstration registry; one waiver at the decl covers all sites\nvar hits int", 1)
	if got := checkFixture(t, "repro/internal/wire", waived, Globalstate()); len(got) != 0 {
		t.Fatalf("waived registry produced findings:\n%s", renderFindings(got))
	}
}
