package analysis

import (
	"strings"
	"testing"
)

// errflowDevFixture declares a device with the durability-source shapes
// (Sync, WriteAt) the analyzer keys on.
const errflowDevPrelude = `package fx

type Dev struct{ n int }

func (Dev) Sync() error                          { return nil }
func (Dev) WriteAt(p []byte, off int64) (int, error) { return len(p), nil }
`

// The seeded bug from the issue: a discarded Sync error — the write is
// acknowledged but may never be durable.
func TestErrflowDiscardedSync(t *testing.T) {
	src := errflowDevPrelude + `
func Flush(d Dev) {
	d.Sync()
}
`
	got := checkFixture(t, "repro/internal/store", src, Errflow("repro/internal/store"))
	wantFindings(t, got, "error from d.Sync() is discarded")
}

func TestErrflowBlankAndTuple(t *testing.T) {
	src := errflowDevPrelude + `
func Blank(d Dev) {
	_ = d.Sync()
}

func Tuple(d Dev, p []byte) int {
	n, _ := d.WriteAt(p, 0)
	return n
}
`
	got := checkFixture(t, "repro/internal/store", src, Errflow("repro/internal/store"))
	wantFindings(t, got,
		"error from d.Sync() is assigned to _",
		"error from d.WriteAt() is assigned to _",
	)
}

// Dead assignments: bound to a variable that no path ever reads.
func TestErrflowDeadAssignment(t *testing.T) {
	src := errflowDevPrelude + `
func Overwritten(d Dev) error {
	err := d.Sync()
	err = nil
	return err
}

func DroppedAtExit(d Dev) int {
	err := d.Sync()
	if err != nil {
		_ = err
	}
	return d.n
}

func BranchAssigned(d Dev, c bool) {
	var err error
	if c {
		err = d.Sync()
	}
	_ = c
	_ = &err
}
`
	// Overwritten: the first err binding is killed unread. DroppedAtExit
	// is clean (the branch reads err). BranchAssigned is exempt: err's
	// address is taken.
	got := checkFixture(t, "repro/internal/store", src, Errflow("repro/internal/store"))
	wantFindings(t, got, "error from d.Sync() is assigned to err but never read on any path")
}

func TestErrflowDeferAndGo(t *testing.T) {
	src := errflowDevPrelude + `
func Deferred(d Dev) {
	defer d.Sync()
}

func Spawned(d Dev) {
	go d.Sync()
}
`
	got := checkFixture(t, "repro/internal/store", src, Errflow("repro/internal/store"))
	wantFindings(t, got,
		"error from deferred d.Sync() is discarded",
		"error from d.Sync() is discarded by the go statement",
	)
}

// Derived sources: a helper that passes the durability error up makes
// its own call sites sources; a helper that swallows it is flagged
// inside, and its (error-less) call sites are not.
func TestErrflowDerivedSources(t *testing.T) {
	src := errflowDevPrelude + `
func flush(d Dev) error {
	return d.Sync()
}

func BadCaller(d Dev) {
	flush(d)
}

func GoodCaller(d Dev) error {
	return flush(d)
}

func swallows(d Dev) {
	_ = d.Sync()
}

func CallsSwallower(d Dev) {
	swallows(d)
}
`
	got := checkFixture(t, "repro/internal/store", src, Errflow("repro/internal/store"))
	wantFindings(t, got,
		"error from flush() is discarded",
		"error from d.Sync() is assigned to _",
	)
}

func TestErrflowConsumedForms(t *testing.T) {
	src := errflowDevPrelude + `
func report(error) {}

func Checked(d Dev) error {
	if err := d.Sync(); err != nil {
		return err
	}
	return nil
}

func Returned(d Dev) error {
	return d.Sync()
}

func Logged(d Dev) {
	report(d.Sync())
}

func Stored(d Dev, sink *error) {
	*sink = d.Sync()
}

func Captured(d Dev) func() error {
	err := d.Sync()
	return func() error { return err }
}

func Named(d Dev) (err error) {
	err = d.Sync()
	return
}
`
	if got := checkFixture(t, "repro/internal/store", src, Errflow("repro/internal/store")); len(got) != 0 {
		t.Fatalf("consumed forms produced findings:\n%s", renderFindings(got))
	}
}

// Out of scope, the same source is quiet; a waiver silences it in scope.
func TestErrflowScopeAndWaiver(t *testing.T) {
	src := errflowDevPrelude + `
func Flush(d Dev) {
	d.Sync()
}
`
	if got := checkFixture(t, "repro/internal/obs", src, Errflow("repro/internal/store")); len(got) != 0 {
		t.Fatalf("out-of-scope package produced findings:\n%s", renderFindings(got))
	}
	waived := strings.Replace(src, "d.Sync()",
		"//lint:ignore errflow best-effort flush; the close path re-syncs\n\td.Sync()", 1)
	if got := checkFixture(t, "repro/internal/store", waived, Errflow("repro/internal/store")); len(got) != 0 {
		t.Fatalf("waived fixture produced findings:\n%s", renderFindings(got))
	}
}
