package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Aliasret flags functions that leak an uncopied reference into
// receiver-owned aliasable storage — the ReadTrack bug class: a method
// indexes a cache/registry map or slice owned by its receiver and returns
// the element (or stores it through a parameter) without copying, so the
// caller and the cache now share one mutable buffer and a later in-place
// mutation is observable mid-commit.
//
// Sources of taint inside a method body:
//
//   - s.field[k] where the selector chain is rooted at the receiver, the
//     field is an unexported map or slice, and the element type is itself
//     a slice or map (aliasable). Pointer and interface elements are NOT
//     sources: shared object caches hand out pointers by design.
//   - s.field itself when it is an unexported map or slice of aliasable
//     elements (returning the whole cache leaks every buffer).
//   - a call to another program method through a receiver-rooted chain
//     whose summary says the result aliases ITS receiver's storage
//     (cross-package escapes: wrapper returns inner.get(k) uncopied).
//
// Taint propagates through plain assignment, slicing, and append whose
// destination is tainted; append(nil-or-fresh, tainted...) and copy()
// launder it. A finding fires when a tainted value is returned or
// assigned through a parameter. Method summaries (which results alias
// receiver-owned storage) are computed program-wide to a fixpoint, so the
// escape is caught at the outermost boundary even across packages.
// Intentional zero-copy paths take a //lint:ignore aliasret waiver.
func Aliasret(paths ...string) *Analyzer {
	return &Analyzer{
		Name:  "aliasret",
		Doc:   "uncopied references into receiver-owned caches escaping via returns or parameters",
		Paths: paths,
		Run:   runAliasret,
	}
}

type aliasFinding struct {
	pos token.Pos
	msg string
}

func runAliasret(pass *Pass) {
	findings := pass.Prog.Once("aliasret", func() any {
		return aliasretProgram(pass.Prog)
	}).([]aliasFinding)
	for _, f := range findings {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// aliasSummaries maps each method to, per result, whether that result can
// alias receiver-owned aliasable storage.
type aliasSummaries map[*Func][]bool

func aliasretProgram(prog *Program) []aliasFinding {
	sums := make(aliasSummaries)
	// Fixpoint: summaries only flip false→true, so iterate until stable.
	for changed := true; changed; {
		changed = false
		for _, f := range prog.Funcs {
			next := aliasScan(prog, f, sums, nil)
			prev := sums[f]
			for i, b := range next {
				if b && (prev == nil || !prev[i]) {
					changed = true
				}
			}
			sums[f] = next
		}
	}
	var out []aliasFinding
	for _, f := range prog.Funcs {
		aliasScan(prog, f, sums, &out)
	}
	return out
}

// recvVar returns the method's receiver variable, or nil.
func recvVar(f *Func) *types.Var {
	if f.Obj == nil {
		return nil
	}
	sig, ok := f.Obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv()
}

// aliasScan walks one function body tracking which local variables hold
// receiver-aliasing values. It returns the per-result summary; when
// report is non-nil it also appends escape findings.
func aliasScan(prog *Program, f *Func, sums aliasSummaries, report *[]aliasFinding) []bool {
	recv := recvVar(f)
	if recv == nil || f.Body == nil {
		return nil
	}
	info := f.Pkg.Info
	sig := f.Obj.Type().(*types.Signature)
	results := make([]bool, sig.Results().Len())

	params := make(map[*types.Var]bool)
	for i := 0; i < sig.Params().Len(); i++ {
		params[sig.Params().At(i)] = true
	}

	tainted := make(map[*types.Var]bool)

	// aliasable reports whether values of the type share backing storage
	// on assignment. Pointers and interfaces are excluded by design: the
	// shared object cache hands out pointers intentionally, and error
	// values never alias buffers.
	aliasable := func(t types.Type) bool {
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map:
			return true
		}
		return false
	}

	// rootedAtRecv reports whether the expression is a selector chain
	// rooted at the receiver variable.
	var rootedAtRecv func(x ast.Expr) bool
	rootedAtRecv = func(x ast.Expr) bool {
		switch x := ast.Unparen(x).(type) {
		case *ast.Ident:
			return info.Uses[x] == recv
		case *ast.SelectorExpr:
			return rootedAtRecv(x.X)
		case *ast.StarExpr:
			return rootedAtRecv(x.X)
		case *ast.IndexExpr:
			return rootedAtRecv(x.X)
		}
		return false
	}

	// ownedField reports whether the selector resolves to an unexported
	// map/slice field with aliasable (slice or map) elements, reachable
	// from the receiver.
	ownedField := func(sel *ast.SelectorExpr) (*types.Var, bool) {
		s := info.Selections[sel]
		if s == nil {
			return nil, false
		}
		v, ok := s.Obj().(*types.Var)
		if !ok || !v.IsField() || v.Exported() {
			return nil, false
		}
		var elem types.Type
		switch t := v.Type().Underlying().(type) {
		case *types.Map:
			elem = t.Elem()
		case *types.Slice:
			elem = t.Elem()
		default:
			return nil, false
		}
		switch elem.Underlying().(type) {
		case *types.Slice, *types.Map:
			return v, true
		}
		return nil, false
	}

	// taintOf reports whether evaluating x yields a receiver-aliasing
	// value, with a description of the owning storage for the message.
	// An expression whose static type cannot alias (int, bool, error, …)
	// never carries taint even when derived from tainted storage:
	// st[len(st)-1] on a tainted []int extracts a value, not a reference.
	var taintOf func(x ast.Expr) (string, bool)
	taintOf = func(x ast.Expr) (string, bool) {
		if tv, ok := info.Types[x]; ok && tv.Type != nil {
			switch t := tv.Type.(type) {
			case *types.Tuple:
				ok := false
				for i := 0; i < t.Len(); i++ {
					ok = ok || aliasable(t.At(i).Type())
				}
				if !ok {
					return "", false
				}
			default:
				if !aliasable(t) {
					return "", false
				}
			}
		}
		switch x := ast.Unparen(x).(type) {
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok && tainted[v] {
				return "receiver-owned storage (via " + x.Name + ")", true
			}
		case *ast.SelectorExpr:
			if field, ok := ownedField(x); ok && rootedAtRecv(x.X) {
				return "receiver-owned " + fieldDesc(field), true
			}
		case *ast.IndexExpr:
			if sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok {
				if field, ok := ownedField(sel); ok && rootedAtRecv(sel.X) {
					return "an element of receiver-owned " + fieldDesc(field), true
				}
			}
			return taintOf(x.X) // indexing a tainted slice-of-slices
		case *ast.SliceExpr:
			return taintOf(x.X)
		case *ast.CallExpr:
			fun := ast.Unparen(x.Fun)
			if id, ok := fun.(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					if id.Name == "append" && len(x.Args) > 0 {
						return taintOf(x.Args[0]) // append keeps arg0's backing array
					}
					return "", false // copy, len, make, … launder
				}
			}
			// A method call through a receiver-rooted chain whose summary
			// marks a result as receiver-aliasing.
			var calleeObj *types.Func
			var base ast.Expr
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				calleeObj, _ = info.Uses[sel.Sel].(*types.Func)
				base = sel.X
			}
			if calleeObj != nil && base != nil && rootedAtRecv(base) {
				if callee := prog.FuncOf(calleeObj); callee != nil {
					for _, aliased := range sums[callee] {
						if aliased {
							return "storage owned by " + callee.Name, true
						}
					}
				}
			}
		}
		return "", false
	}

	ast.Inspect(f.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // literals are separate functions; out of scope
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0] // multi-value: conservatively same taint
				}
				if rhs == nil {
					continue
				}
				desc, isTainted := taintOf(rhs)
				// Track local variables picking up taint.
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					var v *types.Var
					if n.Tok == token.DEFINE {
						v, _ = info.Defs[id].(*types.Var)
					} else {
						v, _ = info.Uses[id].(*types.Var)
					}
					if v != nil && !params[v] {
						// Only aliasable-typed variables carry taint: in
						// `buf, err := s.get(k)` the error and any comma-ok
						// bool share the (multi-value) RHS but not the
						// buffer's backing storage.
						if isTainted && aliasable(v.Type()) {
							tainted[v] = true
						}
						continue
					}
					// Assigning to a (pointer-ish) parameter falls through
					// to the escape check below.
				}
				// Escape: a tainted value stored through a parameter
				// (out-param slice/map/pointer) leaves the receiver.
				if isTainted && report != nil && rootedAtParam(info, params, lhs) {
					*report = append(*report, aliasFinding{
						pos: n.Pos(),
						msg: "stores an uncopied reference to " + desc +
							" through a parameter; copy it first (append([]byte(nil), v...)) or waive with //lint:ignore aliasret <reason>",
					})
				}
			}
		case *ast.ReturnStmt:
			for i, res := range n.Results {
				if desc, isTainted := taintOf(res); isTainted {
					if i < len(results) && aliasable(sig.Results().At(i).Type()) {
						results[i] = true
					}
					if report != nil {
						*report = append(*report, aliasFinding{
							pos: res.Pos(),
							msg: "returns an uncopied reference to " + desc +
								"; the caller can mutate the cached value — copy it first or waive with //lint:ignore aliasret <reason>",
						})
					}
				}
			}
		}
		return true
	})
	return results
}

// rootedAtParam reports whether the assignment target reaches storage
// owned by a caller-visible parameter (x[i], x.Field, *x for parameter x).
func rootedAtParam(info *types.Info, params map[*types.Var]bool, lhs ast.Expr) bool {
	for {
		switch x := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			return v != nil && params[v]
		case *ast.SelectorExpr:
			if info.Selections[x] == nil {
				return false // package-qualified, not a field chain
			}
			lhs = x.X
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.StarExpr:
			lhs = x.X
		default:
			return false
		}
	}
}

func fieldDesc(v *types.Var) string {
	owner := ""
	if v.Pkg() != nil {
		owner = v.Pkg().Name() + "."
	}
	return "cache field " + owner + v.Name()
}
