// Package analysis is gslint's engine: a small, stdlib-only static-analysis
// framework (go/parser + go/ast + go/types) plus the analyzers that
// machine-check the paper's implementation invariants:
//
//	locksafe    — fields annotated "guards"/"guarded by" are only touched
//	              under their mutex (the shared-cache and commit-lock
//	              discipline of internal/core, internal/store, internal/txn)
//	detmap      — no unordered map iteration on serialization/commit/wire
//	              paths, so track images and replication streams are
//	              byte-deterministic
//	wallclock   — no time.Now/math/rand in the kernel packages; transaction
//	              time comes from the commit clock, keeping @T reads
//	              reproducible
//	ooppure     — OOPs are immutable entity identities: no arithmetic on
//	              oop.OOP, no reassignment of another package's OOP-typed
//	              identity fields outside constructors
//	lockorder   — the interprocedural lock-acquisition graph is cycle-free:
//	              no two call chains can acquire the same pair of program
//	              mutexes in opposite orders (deadlock freedom)
//	aliasret    — functions never return or store an uncopied reference
//	              into a receiver-owned map/slice element (the cache-buffer
//	              aliasing bug class)
//	atomicfield — a field accessed through sync/atomic anywhere is accessed
//	              atomically everywhere; mixed plain loads/stores are races
//	unlockpath  — every Lock/RLock is paired with a release on every path
//	              out of the function (early returns, explicit panics),
//	              interprocedurally through lock-effect summaries
//	goroleak    — every go statement is tied to a lifecycle: WaitGroup,
//	              done-channel, context, or a waivered daemon
//	errflow     — error results born on the durability path (track/replica
//	              writes, syncs, superblock flips) flow to a return, log,
//	              or health transition — never _ or a dead assignment
//	globalstate — no package-level mutable state outside waivered
//	              registries (the shard-readiness check)
//	bufown      — pooled buffers (sync.Pool, takePage/putPage,
//	              popTrack/recycleLocked, the algebra runScratch) follow
//	              take → use → put exactly once on every exit path, with
//	              no use-after-put and no escape into caller-visible state
//	sessionlife — sessions reach Close on every path out of the creating
//	              function and are never used after; forked readers are
//	              absorbed or closed (the bootstrap-session-leak class)
//	ctxflow     — a function receiving a context.Context threads that
//	              context to its context-taking callees: no
//	              context.Background()/TODO() below entry points, no nil
//	              contexts, no silently dropped context parameter
//
// lockorder, aliasret, atomicfield, unlockpath, goroleak, errflow, bufown,
// sessionlife and ctxflow are built on the whole-program layer (Program,
// BuildProgram): a call graph over every loaded package plus per-function
// lock and alias summaries, computed once per run and shared through
// Pass.Prog. unlockpath and errflow additionally run path-sensitively over
// per-function control-flow graphs (CFGOf) with the forward-dataflow
// fixpoint solver (FlowSpec, Forward); bufown and sessionlife run the
// typestate engine (typestate.go) — per-value finite state machines with
// light alias tracking and interprocedural consume summaries — on the same
// CFGs.
//
// Intentional exceptions are written in the source as
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line above it, so every waiver is explicit
// and auditable. A suppression without a reason is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	// Paths restricts the analyzer to packages whose import path matches
	// one of these entries exactly, or is a subdirectory of one. Empty
	// means every package.
	Paths []string
	Run   func(*Pass)
}

// applies reports whether the analyzer covers the package path.
func (a *Analyzer) applies(pkgPath string) bool {
	if len(a.Paths) == 0 {
		return true
	}
	for _, p := range a.Paths {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Prog is the whole-program layer. Interprocedural analyzers compute
	// their result once via Prog.Once and replay it through Reportf on
	// every package's pass; Reportf keeps only the findings that land in
	// the current package, so suppression matching stays per-package.
	Prog *Program

	ownFiles map[string]bool
	findings *[]Finding
}

// Reportf records a finding at pos. Findings positioned outside the
// pass's own files are dropped — the package whose pass owns that file
// reports them instead.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ownFiles != nil && !p.ownFiles[position.Filename] {
		return
	}
	*p.findings = append(*p.findings, Finding{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	analyzer string // "" means malformed
	reason   string
	used     bool
	pos      token.Pos
}

const ignorePrefix = "//lint:ignore"

// collectSuppressions indexes every //lint:ignore comment by file and line.
func collectSuppressions(fset *token.FileSet, files []*ast.File) map[string]map[int]*suppression {
	out := make(map[string]map[int]*suppression)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				s := &suppression{pos: c.Pos()}
				if name, reason, ok := strings.Cut(rest, " "); ok && strings.TrimSpace(reason) != "" {
					s.analyzer = name
					s.reason = strings.TrimSpace(reason)
				}
				pos := fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = make(map[int]*suppression)
				}
				out[pos.Filename][pos.Line] = s
			}
		}
	}
	return out
}

// RunAnalyzers applies every analyzer to one of prog's packages and
// returns the surviving (unsuppressed) findings, sorted by position.
// Suppression comments must name the analyzer and give a reason;
// malformed or unused suppressions are reported so waivers cannot rot
// silently.
func RunAnalyzers(analyzers []*Analyzer, prog *Program, target *Package) []Finding {
	fset, files, pkg, info := target.Fset, target.Files, target.Pkg, target.Info
	ownFiles := make(map[string]bool, len(files))
	for _, f := range files {
		ownFiles[fset.Position(f.Pos()).Filename] = true
	}
	var raw []Finding
	for _, a := range analyzers {
		if !a.applies(pkg.Path()) {
			continue
		}
		pass := &Pass{
			Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info,
			Prog: prog, ownFiles: ownFiles, findings: &raw,
		}
		a.Run(pass)
	}

	sup := collectSuppressions(fset, files)
	var out []Finding
	for _, f := range raw {
		if s := matchSuppression(sup, f); s != nil {
			s.used = true
			continue
		}
		out = append(out, f)
	}
	// Malformed and unused suppressions are findings themselves.
	for _, lines := range sup {
		for _, s := range lines {
			switch {
			case s.analyzer == "":
				out = append(out, Finding{
					Pos:      fset.Position(s.pos),
					Analyzer: "gslint",
					Message:  "malformed suppression: want //lint:ignore <analyzer> <reason>",
				})
			case !s.used && analyzerNamed(analyzers, s.analyzer) == nil:
				// A waiver for a real analyzer that just isn't in this run
				// (e.g. gslint -only) is neither unknown nor unused.
				if analyzerNamed(All(), s.analyzer) != nil {
					continue
				}
				out = append(out, Finding{
					Pos:      fset.Position(s.pos),
					Analyzer: "gslint",
					Message:  fmt.Sprintf("suppression names unknown analyzer %q", s.analyzer),
				})
			case !s.used && analyzerNamed(analyzers, s.analyzer).applies(pkg.Path()):
				out = append(out, Finding{
					Pos:      fset.Position(s.pos),
					Analyzer: "gslint",
					Message:  fmt.Sprintf("unused suppression for %s; remove it", s.analyzer),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Message < out[j].Message
	})
	return out
}

func analyzerNamed(analyzers []*Analyzer, name string) *Analyzer {
	for _, a := range analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// matchSuppression finds a suppression covering the finding: same line or
// the line directly above, naming the finding's analyzer.
func matchSuppression(sup map[string]map[int]*suppression, f Finding) *suppression {
	lines := sup[f.Pos.Filename]
	if lines == nil {
		return nil
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		if s, ok := lines[line]; ok && s.analyzer == f.Analyzer {
			return s
		}
	}
	return nil
}

// All returns the production analyzer set with the repository's scoping.
// internal/iofault sits in the detmap and wallclock scopes (and locksafe is
// global): a fault schedule that iterated a map or read the wall clock
// would make failure replays nondeterministic.
func All() []*Analyzer {
	return []*Analyzer{
		Locksafe(),
		Detmap("repro/internal/store", "repro/internal/txn", "repro/internal/wire", "repro/internal/core", "repro/internal/obs", "repro/internal/iofault"),
		Wallclock("repro/internal/oop", "repro/internal/txn", "repro/internal/store", "repro/internal/core", "repro/internal/object", "repro/internal/wire", "repro/internal/iofault"),
		Ooppure("repro/internal/oop"),
		Lockorder(),
		Aliasret("repro/internal"),
		Atomicfield(),
		Unlockpath(),
		Goroleak(),
		// The testdata/seeded path keeps the scoped analyzer live on the
		// seeded-bug fixtures CI loads explicitly (the linter's linter);
		// `./...` never matches a testdata directory, so it is inert in
		// normal runs.
		// internal/experiments is deliberately out of errflow scope: the
		// claim demos discard object-layer errors in controlled setups by
		// design (the checker asserts on final state instead). Fault
		// injection there (DamageTrack) must still be checked — triage
		// fixed those by hand; see claims2.go.
		Errflow("repro/cmd/gemstone", "repro/internal/store", "repro/internal/txn", "repro/internal/core", "repro/internal/wire", "repro/internal/executor", "repro/internal/iofault", "repro/internal/analysis/testdata/seeded"),
		Globalstate(),
		// bufown is scoped to the packages that own pools (plus the seeded
		// canaries); sessionlife and ctxflow run everywhere sessions and
		// contexts flow.
		Bufown("repro/internal/store", "repro/internal/algebra", "repro/internal/txn", "repro/internal/analysis/testdata/seeded"),
		Sessionlife(),
		Ctxflow(),
	}
}

// Waiver is one //lint:ignore suppression, for `gslint -waivers` audits.
// Malformed suppressions surface with an empty Analyzer and Reason (they
// are also lint findings in their own right).
type Waiver struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

// Waivers lists every suppression comment in the package, sorted by
// position.
func Waivers(pkg *Package) []Waiver {
	var out []Waiver
	for _, lines := range collectSuppressions(pkg.Fset, pkg.Files) {
		for _, s := range lines {
			out = append(out, Waiver{
				Pos:      pkg.Fset.Position(s.pos),
				Analyzer: s.analyzer,
				Reason:   s.reason,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}
