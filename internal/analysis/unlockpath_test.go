package analysis

import (
	"strings"
	"testing"
)

// The seeded bug from the issue: a lock acquired, then an early return
// BEFORE the deferred unlock is registered. The early-return path leaks
// the lock; the normal path is covered.
const unlockpathHoleFixture = `package fx

import "sync"

type Cache struct {
	mu sync.Mutex
	m  map[string]int
}

func (c *Cache) Get(k string) (int, bool) {
	c.mu.Lock()
	if c.m == nil {
		return 0, false
	}
	defer c.mu.Unlock()
	v, ok := c.m[k]
	return v, ok
}
`

func TestUnlockpathEarlyReturnHole(t *testing.T) {
	got := checkFixture(t, "repro/internal/store", unlockpathHoleFixture, Unlockpath())
	wantFindings(t, got, "fx.Cache.mu.Lock() in fx.(*Cache).Get is not released on every path: still held at the return at fixture.go:13")
}

func TestUnlockpathCleanVariants(t *testing.T) {
	src := `package fx

import "sync"

type Cache struct {
	mu sync.Mutex
	m  map[string]int
}

// Defer registered before any branch: every exit covered.
func (c *Cache) Get(k string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		return 0, false
	}
	v, ok := c.m[k]
	return v, ok
}

// Explicit unlock on each path.
func (c *Cache) Put(k string, v int) bool {
	c.mu.Lock()
	if c.m == nil {
		c.mu.Unlock()
		return false
	}
	c.m[k] = v
	c.mu.Unlock()
	return true
}

// Release inside a loop body that always precedes the branch out.
func (c *Cache) Drain() int {
	n := 0
	for {
		c.mu.Lock()
		if len(c.m) == 0 {
			c.mu.Unlock()
			return n
		}
		for k := range c.m {
			delete(c.m, k)
			n++
		}
		c.mu.Unlock()
	}
}
`
	if got := checkFixture(t, "repro/internal/store", src, Unlockpath()); len(got) != 0 {
		t.Fatalf("clean fixture produced findings:\n%s", renderFindings(got))
	}
}

// Interprocedural: a helper whose net effect is "release" counts as the
// unlock; a helper whose net effect is "acquire" charges the caller.
func TestUnlockpathHelperSummaries(t *testing.T) {
	src := `package fx

import "sync"

type DB struct {
	mu sync.Mutex
	n  int
}

func (d *DB) release() { d.mu.Unlock() }

//lint:ignore unlockpath acquire helper: callers own the release
func (d *DB) acquire() { d.mu.Lock() }

// Clean: the branch releases through the helper.
func (d *DB) Read(c bool) int {
	d.mu.Lock()
	if c {
		d.release()
		return 0
	}
	d.mu.Unlock()
	return d.n
}

// Fires: the helper acquires, and the early return leaks it.
func (d *DB) Bump(c bool) int {
	d.acquire()
	if c {
		return 0
	}
	d.mu.Unlock()
	return d.n
}
`
	got := checkFixture(t, "repro/internal/store", src, Unlockpath())
	wantFindings(t, got, "fx.DB.mu.Lock() in fx.(*DB).Bump is not released on every path: still held at the return at fixture.go:30")
}

// Mode mismatch: a deferred write-Unlock does not cover an RLock.
func TestUnlockpathReadWriteModes(t *testing.T) {
	src := `package fx

import "sync"

type Idx struct {
	rw sync.RWMutex
	n  int
}

func (i *Idx) Bad() int {
	i.rw.RLock()
	defer i.rw.Unlock()
	return i.n
}

func (i *Idx) Good() int {
	i.rw.RLock()
	defer i.rw.RUnlock()
	return i.n
}
`
	got := checkFixture(t, "repro/internal/store", src, Unlockpath())
	wantFindings(t, got, "fx.Idx.rw.RLock() in fx.(*Idx).Bad is not released")
}

// An explicit panic while holding the lock, with no deferred release, is
// an exit like any other.
func TestUnlockpathPanicExit(t *testing.T) {
	src := `package fx

import "sync"

type Box struct {
	mu sync.Mutex
	v  int
}

func (b *Box) Must() int {
	b.mu.Lock()
	if b.v == 0 {
		panic("empty")
	}
	b.mu.Unlock()
	return b.v
}
`
	got := checkFixture(t, "repro/internal/store", src, Unlockpath())
	wantFindings(t, got, "still held at the panic at fixture.go:13")

	// The deferred unlock runs during panic unwinding: covered.
	covered := strings.Replace(src, "b.mu.Lock()", "b.mu.Lock()\n\tdefer b.mu.Unlock()", 1)
	covered = strings.Replace(covered, "\tb.mu.Unlock()\n\treturn b.v", "\treturn b.v", 1)
	if got := checkFixture(t, "repro/internal/store", covered, Unlockpath()); len(got) != 0 {
		t.Fatalf("defer-covered panic produced findings:\n%s", renderFindings(got))
	}
}

func TestUnlockpathWaiver(t *testing.T) {
	waived := strings.Replace(unlockpathHoleFixture, "c.mu.Lock()",
		"//lint:ignore unlockpath demonstration of the waiver idiom\n\tc.mu.Lock()", 1)
	if got := checkFixture(t, "repro/internal/store", waived, Unlockpath()); len(got) != 0 {
		t.Fatalf("waived fixture produced findings:\n%s", renderFindings(got))
	}
}
