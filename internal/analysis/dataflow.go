package analysis

// dataflow.go is the forward-dataflow fixpoint framework the CFG-based
// analyzers share. An analyzer states its problem as a FlowSpec — an
// entry state, a transfer function over one block, a join for merging
// predecessor states and an equality test — and Forward iterates to a
// fixpoint with a worklist.
//
// Conventions:
//
//   - States are analyzer-defined values passed as `any`. Transfer must
//     treat its input as immutable (clone before changing); Join may
//     return either argument when the other is nil.
//   - A nil state means "unreachable": blocks whose predecessors all have
//     nil out-states are never transferred, and their own out-state stays
//     nil. Analyzers therefore never see a nil input.
//   - Join must be monotone (the merged state can only grow toward the
//     fixpoint) and Equal must be a true equivalence, or the worklist
//     will not terminate. With the small per-function graphs gslint
//     builds, the classic round-robin worklist converges in a handful of
//     passes.
type FlowSpec struct {
	Init     func() any              // state entering the Entry block
	Transfer func(*Block, any) any   // out-state of a block given its in-state
	Join     func(a, b any) any      // merge two predecessor out-states
	Equal    func(a, b any) bool     // has the state stabilized?
}

// FlowResult holds the fixpoint: the state entering and leaving each
// reachable block (unreachable blocks map to nil).
type FlowResult struct {
	In  map[*Block]any
	Out map[*Block]any
}

// Forward solves the dataflow problem over the graph. Blocks are seeded
// in index order, so iteration — and any finding an analyzer derives from
// the result — is deterministic.
func (c *CFG) Forward(spec FlowSpec) *FlowResult {
	res := &FlowResult{
		In:  make(map[*Block]any, len(c.Blocks)),
		Out: make(map[*Block]any, len(c.Blocks)),
	}
	inQueue := make([]bool, len(c.Blocks))
	queue := make([]*Block, 0, len(c.Blocks))
	push := func(b *Block) {
		if !inQueue[b.Index] {
			inQueue[b.Index] = true
			queue = append(queue, b)
		}
	}
	for _, b := range c.Blocks {
		push(b)
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		inQueue[b.Index] = false

		var in any
		if b == c.Entry {
			in = spec.Init()
		}
		for _, p := range b.Preds {
			if o := res.Out[p]; o != nil {
				if in == nil {
					in = o
				} else {
					in = spec.Join(in, o)
				}
			}
		}
		if in == nil {
			continue // unreachable (so far)
		}
		res.In[b] = in
		out := spec.Transfer(b, in)
		if old, ok := res.Out[b]; ok && spec.Equal(old, out) {
			continue
		}
		res.Out[b] = out
		for _, s := range b.Succs {
			push(s)
		}
	}
	return res
}
