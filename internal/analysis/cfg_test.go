package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// cfgOf parses src (a full file), finds the function named name, and
// builds its CFG.
func cfgOf(t *testing.T, src, name string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return buildCFG(fd.Body)
		}
	}
	t.Fatalf("no function %q in fixture", name)
	return nil
}

// exitKinds renders the Term kind of each exit predecessor, in index
// order: "return", "panic", or "fall" for the implicit end.
func exitKinds(c *CFG) []string {
	var out []string
	for _, b := range c.ExitPreds() {
		switch b.Term.(type) {
		case *ast.ReturnStmt:
			out = append(out, "return")
		case *ast.CallExpr:
			out = append(out, "panic")
		default:
			out = append(out, "fall")
		}
	}
	return out
}

func wantKinds(t *testing.T, c *CFG, want ...string) {
	t.Helper()
	got := exitKinds(c)
	if len(got) != len(want) {
		t.Fatalf("exit preds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("exit preds = %v, want %v", got, want)
		}
	}
}

// TestCFGExits: each return, explicit panic, and the fall-off end is its
// own Exit predecessor with the right Term.
func TestCFGExits(t *testing.T) {
	c := cfgOf(t, `package p
func f(c bool) int {
	if c {
		return 1
	}
	if !c {
		panic("no")
	}
	g()
	return 2
}
func g() {}
`, "f")
	wantKinds(t, c, "return", "panic", "return")
}

// TestCFGDeferBranchInterplay: the shape behind unlockpath's key case —
// a defer registered after a conditional early return is NOT on the
// early-return path. The early-return exit block must not contain the
// DeferStmt; the final-return path must.
func TestCFGDeferBranchInterplay(t *testing.T) {
	c := cfgOf(t, `package p
func f(c bool) int {
	before()
	if c {
		return 0
	}
	defer after()
	return 1
}
func before() {}
func after()  {}
`, "f")
	preds := c.ExitPreds()
	if len(preds) != 2 {
		t.Fatalf("want 2 exit preds, got %d", len(preds))
	}
	hasDefer := func(b *Block) bool {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				return true
			}
		}
		return false
	}
	early, final := preds[0], preds[1]
	if hasDefer(early) {
		t.Fatalf("early-return block must not see the later defer")
	}
	if !hasDefer(final) {
		t.Fatalf("final-return block must contain the defer")
	}
}

// TestCFGLoop: a for loop has a back edge, and `for {}` with no
// condition has no false exit — body code after it is unreachable.
func TestCFGLoop(t *testing.T) {
	c := cfgOf(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
`, "f")
	wantKinds(t, c, "return")

	// A loop that never exits: the only path to Exit would be a
	// return/panic inside it; here there is none, so Exit is unreachable
	// except via no predecessors at all.
	c = cfgOf(t, `package p
func f() {
	for {
	}
}
`, "f")
	if len(c.Exit.Preds) != 0 {
		t.Fatalf("infinite loop: want no exit preds, got %d", len(c.Exit.Preds))
	}
}

// TestCFGBreakContinue: break jumps past the loop, continue re-enters
// the head; both keep the function's single fall-off exit.
func TestCFGBreakContinue(t *testing.T) {
	c := cfgOf(t, `package p
func f(xs []int) int {
	s := 0
outer:
	for _, x := range xs {
		for {
			if x < 0 {
				continue outer
			}
			if x == 0 {
				break outer
			}
			s += x
			break
		}
	}
	return s
}
`, "f")
	wantKinds(t, c, "return")
}

// TestCFGUnreachable: code after a return is parked in a block with no
// predecessors, so its nodes exist but carry no flow.
func TestCFGUnreachable(t *testing.T) {
	c := cfgOf(t, `package p
func f() int {
	return 1
	g()
	return 2
}
func g() {}
`, "f")
	var orphan *Block
	for _, b := range c.Blocks {
		if b != c.Entry && len(b.Preds) == 0 && len(b.Nodes) > 0 {
			orphan = b
			break
		}
	}
	if orphan == nil {
		t.Fatalf("dead code should live in a predecessor-less block")
	}
}

// TestCFGSwitchFallthrough: fallthrough flows into the next clause's
// body; a switch without default has an edge straight to after.
func TestCFGSwitchFallthrough(t *testing.T) {
	c := cfgOf(t, `package p
func f(x int) int {
	s := 0
	switch x {
	case 1:
		s = 1
		fallthrough
	case 2:
		s += 2
	}
	return s
}
`, "f")
	wantKinds(t, c, "return")
}

// TestCFGSelect: the after-block of a select is reachable only through
// an arm; a select whose every arm returns never falls through.
func TestCFGSelect(t *testing.T) {
	c := cfgOf(t, `package p
func f(a, b chan int) int {
	select {
	case x := <-a:
		return x
	case x := <-b:
		return x
	}
}
`, "f")
	wantKinds(t, c, "return", "return")
}

// TestCFGForwardSolver: the dataflow framework reaches a fixpoint over a
// loop — a "reached" bit set in the body propagates to the exit.
func TestCFGForwardSolver(t *testing.T) {
	c := cfgOf(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		mark()
	}
}
func mark() {}
`, "f")
	res := c.Forward(FlowSpec{
		Init: func() any { return false },
		Transfer: func(b *Block, in any) any {
			v := in.(bool)
			for _, n := range b.Nodes {
				if _, ok := n.(*ast.ExprStmt); ok {
					v = true
				}
			}
			return v
		},
		Join:  func(a, b any) any { return a.(bool) || b.(bool) },
		Equal: func(a, b any) bool { return a == b },
	})
	preds := c.ExitPreds()
	if len(preds) != 1 {
		t.Fatalf("want 1 exit pred, got %d", len(preds))
	}
	if got := res.Out[preds[0]]; got != true {
		t.Fatalf("loop body effect must reach the exit via the back edge; got %v", got)
	}
}
