package gemstone

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestReplayProducesIdenticalReplicas builds two fresh databases, replays
// the same commit sequence into each, and requires the on-disk track files
// to be bit-identical — across the two databases and across the replicas
// within each. Deterministic track images are what make replicated
// safe-writes comparable and recovery auditable; any map-iteration order,
// timestamp or address leaking into the encoding shows up here as a diff.
func TestReplayProducesIdenticalReplicas(t *testing.T) {
	replay := func(dir string) {
		t.Helper()
		db, err := Open(dir, Options{Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		s, err := db.Login(SystemUser, "swordfish")
		if err != nil {
			t.Fatal(err)
		}
		s.MustRun(`Object subclass: 'Part' instVarNames: #('name' 'weight')`)
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			s.MustRun(fmt.Sprintf(
				"| p | p := Part new. p at: #name put: 'part-%d'. p at: #weight put: %d. World at: #part%d put: p",
				i, i*10, i))
			if _, err := s.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		// Overwrites extend per-element histories, exercising the history
		// encoding as well as fresh allocation.
		for i := 0; i < 8; i += 2 {
			s.MustRun(fmt.Sprintf("World!part%d at: #weight put: %d", i, i*10+1))
			if _, err := s.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}

	dirA, dirB := t.TempDir(), t.TempDir()
	replay(dirA)
	replay(dirB)

	read := func(dir string, replica int) []byte {
		t.Helper()
		raw, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("replica%d.gs", replica)))
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	for r := 0; r < 2; r++ {
		a, b := read(dirA, r), read(dirB, r)
		if !bytes.Equal(a, b) {
			t.Errorf("replica%d.gs differs between identical replays (%d vs %d bytes)", r, len(a), len(b))
		}
	}
	if !bytes.Equal(read(dirA, 0), read(dirA, 1)) {
		t.Error("replicas within one database differ; safe-write fan-out is not deterministic")
	}
}
