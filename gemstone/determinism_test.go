package gemstone

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/iofault"
	"repro/internal/store"
)

// TestReplayProducesIdenticalReplicas builds two fresh databases, replays
// the same commit sequence into each, and requires the on-disk track files
// to be bit-identical — across the two databases and across the replicas
// within each. Deterministic track images are what make replicated
// safe-writes comparable and recovery auditable; any map-iteration order,
// timestamp or address leaking into the encoding shows up here as a diff.
func TestReplayProducesIdenticalReplicas(t *testing.T) {
	replay := func(dir string) {
		t.Helper()
		db, err := Open(dir, Options{Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		s, err := db.Login(SystemUser, "swordfish")
		if err != nil {
			t.Fatal(err)
		}
		s.MustRun(`Object subclass: 'Part' instVarNames: #('name' 'weight')`)
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			s.MustRun(fmt.Sprintf(
				"| p | p := Part new. p at: #name put: 'part-%d'. p at: #weight put: %d. World at: #part%d put: p",
				i, i*10, i))
			if _, err := s.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		// Overwrites extend per-element histories, exercising the history
		// encoding as well as fresh allocation.
		for i := 0; i < 8; i += 2 {
			s.MustRun(fmt.Sprintf("World!part%d at: #weight put: %d", i, i*10+1))
			if _, err := s.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}

	dirA, dirB := t.TempDir(), t.TempDir()
	replay(dirA)
	replay(dirB)

	read := func(dir string, replica int) []byte {
		t.Helper()
		raw, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("replica%d.gs", replica)))
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	for r := 0; r < 2; r++ {
		a, b := read(dirA, r), read(dirB, r)
		if !bytes.Equal(a, b) {
			t.Errorf("replica%d.gs differs between identical replays (%d vs %d bytes)", r, len(a), len(b))
		}
	}
	if !bytes.Equal(read(dirA, 0), read(dirA, 1)) {
		t.Error("replicas within one database differ; safe-write fan-out is not deterministic")
	}
}

// TestFaultedReplayConvergesBitIdentical replays the same workload as the
// determinism test into a clean three-arm database and into one whose
// middle arm suffers a torn write mid-replay (degrading it). After a scrub
// and a rebuild of the torn arm, all three faulted-run files must be
// bit-identical to the clean run's: fault handling, read-repair and
// rebuild may not leak any nondeterminism into the track images.
func TestFaultedReplayConvergesBitIdentical(t *testing.T) {
	workload := func(db *DB) {
		t.Helper()
		s, err := db.Login(SystemUser, "swordfish")
		if err != nil {
			t.Fatal(err)
		}
		s.MustRun(`Object subclass: 'Part' instVarNames: #('name' 'weight')`)
		if _, err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			s.MustRun(fmt.Sprintf(
				"| p | p := Part new. p at: #name put: 'part-%d'. p at: #weight put: %d. World at: #part%d put: p",
				i, i*10, i))
			if _, err := s.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 8; i += 2 {
			s.MustRun(fmt.Sprintf("World!part%d at: #weight put: %d", i, i*10+1))
			if _, err := s.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}

	cleanDir, faultDir := t.TempDir(), t.TempDir()

	clean, err := Open(cleanDir, Options{Replicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	workload(clean)
	if err := clean.Close(); err != nil {
		t.Fatal(err)
	}

	faulted, err := Open(faultDir, Options{
		Replicas: 3,
		OpenReplica: func(path string, replica int) (store.ReplicaFile, error) {
			if replica != 1 {
				return os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
			}
			// A single torn write past the bootstrap, mid-replay. The arm
			// degrades there and its ordinals freeze, so Rebuild's writes
			// (the next this device sees) run outside any fault window.
			return iofault.Open(path, iofault.Schedule{Rules: []iofault.Rule{
				{Op: iofault.OpWrite, Kind: iofault.Torn, From: 25, To: 25},
			}})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	workload(faulted)
	if faulted.Health()[1].State != store.ArmDegraded.String() {
		t.Fatalf("arm 1 %s after torn write, want degraded", faulted.Health()[1].State)
	}
	if res := faulted.Scrub(); res.Lost != 0 {
		t.Fatalf("scrub lost %d tracks", res.Lost)
	}
	if err := faulted.Rebuild(1); err != nil {
		t.Fatal(err)
	}
	for _, h := range faulted.Health() {
		if h.State != store.ArmHealthy.String() {
			t.Errorf("replica %d %s after rebuild (%s)", h.Replica, h.State, h.LastError)
		}
	}
	if err := faulted.Close(); err != nil {
		t.Fatal(err)
	}

	read := func(dir string, replica int) []byte {
		t.Helper()
		raw, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("replica%d.gs", replica)))
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	want := read(cleanDir, 0)
	for r := 0; r < 3; r++ {
		if got := read(faultDir, r); !bytes.Equal(want, got) {
			t.Errorf("faulted replica%d.gs differs from clean replay (%d vs %d bytes)", r, len(got), len(want))
		}
	}
}
