package gemstone

import (
	"strings"
	"testing"
)

func openDB(t testing.TB) *DB {
	t.Helper()
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func login(t testing.TB, db *DB) *Session {
	t.Helper()
	s, err := db.Login(SystemUser, "swordfish")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestQuickstartFlow(t *testing.T) {
	db := openDB(t)
	s := login(t, db)
	s.MustRun(`Object subclass: 'Employee' instVarNames: #('name' 'salary')`)
	s.MustRun(`Employee compile: 'name: n salary: s name := n. salary := s'`)
	s.MustRun(`| e | e := Employee new. e name: 'Ellen' salary: 24650. World at: #ellen put: e`)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := s.Run("World!ellen!name")
	if err != nil || got != "'Ellen'" {
		t.Errorf("= %q (%v)", got, err)
	}
}

func TestExecuteResultAndOutput(t *testing.T) {
	db := openDB(t)
	s := login(t, db)
	r, err := s.Execute("Transcript show: 'hi'. 3 + 4")
	if err != nil {
		t.Fatal(err)
	}
	if r.Printed != "7" || r.Output != "hi" {
		t.Errorf("result = %+v", r)
	}
	// Errors still return output produced before the failure.
	r, err = s.Execute("Transcript show: 'pre'. nil explode")
	if err == nil {
		t.Error("expected error")
	}
	if r.Output != "pre" {
		t.Errorf("output = %q", r.Output)
	}
}

func TestQueryAPI(t *testing.T) {
	db := openDB(t)
	s := login(t, db)
	s.MustRun(`| emps e |
		emps := Dictionary new. World at: #Employees put: emps.
		e := Dictionary new. e at: #Salary put: 100. emps at: 'E1' put: e.
		e := Dictionary new. e at: #Salary put: 300. emps at: 'E2' put: e`)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	rows, err := s.Query("{E: e} where (e in World!Employees) and e!Salary > 200")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	sal, err := s.Path("e!Salary", map[string]Value{"e": rows[0]["E"]})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := s.Print(sal)
	if p != "300" {
		t.Errorf("salary = %s", p)
	}
	naive, err := s.QueryNaive("{E: e} where (e in World!Employees) and e!Salary > 200")
	if err != nil || len(naive) != 1 {
		t.Errorf("naive rows = %v (%v)", naive, err)
	}
	plan, err := s.Explain("{E: e} where (e in World!Employees) and e!Salary > 200")
	if err != nil || !strings.Contains(plan, "scan") {
		t.Errorf("plan = %q (%v)", plan, err)
	}
}

func TestPathAssignAndTimeDial(t *testing.T) {
	db := openDB(t)
	s := login(t, db)
	s.MustRun(`World at: #acme put: Dictionary new`)
	acme, err := s.Path("World!acme", nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = acme
	if err := s.PathAssign("World!acme!president", mustStr(t, s, "Ayn"), nil); err != nil {
		t.Fatal(err)
	}
	t1, err := s.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PathAssign("World!acme!president", mustStr(t, s, "Milton"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTimeDial(t1); err != nil {
		t.Fatal(err)
	}
	v, err := s.Path("World!acme!president", nil)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := s.Print(v)
	if p != "'Ayn'" {
		t.Errorf("dialed president = %s", p)
	}
	if err := s.SetTimeDial(Now); err != nil {
		t.Fatal(err)
	}
	if s.SafeTime() == 0 {
		t.Error("SafeTime zero")
	}
}

func mustStr(t testing.TB, s *Session, str string) Value {
	t.Helper()
	v, err := s.Core().NewString(str)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCreateUserAndIsolation(t *testing.T) {
	db := openDB(t)
	if err := db.CreateUser("alice", "apw"); err != nil {
		t.Fatal(err)
	}
	as, err := db.Login("alice", "apw")
	if err != nil {
		t.Fatal(err)
	}
	as.MustRun(`| o | o := Object new. o at: #v put: 42. World at: #aliceData put: o`)
	if _, err := as.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateUser("bob", "bpw"); err != nil {
		t.Fatal(err)
	}
	bs, err := db.Login("bob", "bpw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bs.Run("World!aliceData!v"); err == nil {
		t.Error("bob read alice's segment")
	}
	if _, err := db.Login("alice", "wrong"); err == nil {
		t.Error("bad password accepted")
	}
}

func TestCreateIndexAPI(t *testing.T) {
	db := openDB(t)
	s := login(t, db)
	s.MustRun(`| emps e |
		emps := Set new. World at: #emps put: emps.
		1 to: 50 do: [:i | e := Dictionary new. e at: #salary put: i. emps add: e]`)
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("World!emps", []string{"salary"}); err != nil {
		t.Fatal(err)
	}
	plan, err := s.Explain("{E: e} where (e in World!emps) and e!salary = 25")
	if err != nil || !strings.Contains(plan, "index-scan") {
		t.Errorf("plan = %q (%v)", plan, err)
	}
}

func TestTwoSessionsConflict(t *testing.T) {
	db := openDB(t)
	a := login(t, db)
	b := login(t, db)
	a.MustRun("World at: #k put: 0")
	if _, err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	// Both sessions write the same element; the second committer loses.
	a.MustRun("World at: #k put: 1")
	b.MustRun("World at: #k put: 2")
	if _, err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Commit(); err == nil {
		t.Error("second committer should conflict")
	}
	// After refresh b can retry.
	b.MustRun("World at: #k put: 2")
	if _, err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	// a's snapshot predates b's commit (snapshot isolation); refreshing the
	// transaction reveals the new state.
	if out, _ := a.Run("World!k"); out != "1" {
		t.Errorf("pre-refresh k = %s, want snapshot value 1", out)
	}
	a.Abort()
	if out, _ := a.Run("World!k"); out != "2" {
		t.Errorf("post-refresh k = %s", out)
	}
}

func TestReopenKeepsImage(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := db.Login(SystemUser, "swordfish")
	s.MustRun("World at: #x put: 7")
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	s2, _ := db2.Login(SystemUser, "swordfish")
	if out, _ := s2.Run("World!x"); out != "7" {
		t.Errorf("x = %s", out)
	}
	// Kernel image still works (collection protocol compiled from stored
	// sources).
	if out, _ := s2.Run("#(1 2 3) collect: [:i | i * 2]"); out != "an OrderedCollection( 2 4 6 )" {
		t.Errorf("= %s", out)
	}
}

func TestHistoryAPI(t *testing.T) {
	db := openDB(t)
	s := login(t, db)
	s.MustRun("World at: #e put: (Object new at: #v put: 1; yourself)")
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	s.MustRun("World!e at: #v put: 2")
	if _, err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	e, err := s.Path("World!e", nil)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := s.History(e, "v")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 || hist[0].T >= hist[1].T {
		t.Fatalf("history = %+v", hist)
	}
	p0, _ := s.Print(hist[0].Value)
	p1, _ := s.Print(hist[1].Value)
	if p0 != "1" || p1 != "2" {
		t.Errorf("values = %s %s", p0, p1)
	}
}

// TestNoSessionLeaks pins the session-lifecycle invariant the sessionlife
// analyzer checks statically: no public entry point leaves a transaction
// pinned in the Transaction Manager. A leaked session camps on the
// published tip, pins the validation log, and forces every later commit
// off the idle-pipeline fast path — the bug class fixed in Open's and
// Login's interpreter-error branches.
func TestNoSessionLeaks(t *testing.T) {
	db := openDB(t)
	active := func() int { return db.Core().TxnManager().ActiveCount() }
	if n := active(); n != 0 {
		t.Fatalf("Open left %d bootstrap transaction(s) active", n)
	}
	if err := db.CreateUser("carol", "pw"); err != nil {
		t.Fatal(err)
	}
	if n := active(); n != 0 {
		t.Fatalf("CreateUser left %d transaction(s) active", n)
	}
	if _, err := db.Login("carol", "wrong-password"); err == nil {
		t.Fatal("expected failed login")
	}
	if n := active(); n != 0 {
		t.Fatalf("failed Login left %d transaction(s) active", n)
	}
	s, err := db.Login("carol", "pw")
	if err != nil {
		t.Fatal(err)
	}
	if n := active(); n != 1 {
		t.Fatalf("one live session should pin exactly one transaction, got %d", n)
	}
	s.Close()
	if n := active(); n != 0 {
		t.Fatalf("Close left %d transaction(s) active", n)
	}
}
