// Package gemstone is the public API of the GemStone reproduction: an
// object database with a Smalltalk-derived data language (OPAL), per-element
// transaction-time history, path expressions, a declarative set calculus,
// optimistic multi-user transactions and history-aware indexes — the system
// described in Copeland & Maier, "Making Smalltalk a Database System"
// (SIGMOD 1984).
//
// A database is opened (or bootstrapped) with Open; users connect with
// Login, obtaining a Session that executes blocks of OPAL source, evaluates
// path expressions, runs calculus queries, and controls transactions and
// the time dial:
//
//	db, _ := gemstone.Open("mydb", gemstone.Options{})
//	defer db.Close()
//	s, _ := db.Login(gemstone.SystemUser, "swordfish")
//	s.Run(`Object subclass: 'Employee' instVarNames: #('name' 'salary')`)
//	s.Run(`| e | e := Employee new. e at: #name put: 'Ellen'. World at: #ellen put: e`)
//	s.Commit()
//	out, _ := s.Run("World!ellen!name") // "'Ellen'"
package gemstone

import (
	"context"
	"fmt"

	"repro/internal/algebra"
	"repro/internal/auth"
	"repro/internal/calculus"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/oop"
	"repro/internal/opal"
	"repro/internal/path"
	"repro/internal/store"
)

// SystemUser is the bootstrap administrator account.
const SystemUser = auth.SystemUser

// Value is an object reference (an OOP): the unit of entity identity.
type Value = oop.OOP

// Time is a transaction time.
type Time = oop.Time

// Nil is the nil object.
var Nil = oop.Nil

// Now is the time-dial setting for the current state.
var Now = oop.TimeNow

// Options configures a database.
type Options struct {
	TrackSize      int    // bytes per track (default 8192)
	Replicas       int    // replica files for each track (default 1)
	CacheTracks    int    // in-memory track cache (default 256)
	SystemPassword string // SystemUser password (default "swordfish")

	// WriteQuorum is the minimum number of replica arms a commit must
	// reach durably; arms that fail are degraded and skipped (default 1).
	WriteQuorum int

	// OpenReplica, when non-nil, supplies each replica arm's device —
	// the fault-injection hook (see internal/iofault).
	OpenReplica store.OpenReplicaFunc

	// FailPoint, when non-nil, is consulted at each named step of the
	// commit protocol; returning an error simulates a crash at that step
	// (see store.Options). For recovery testing only.
	FailPoint func(step string) error
}

// DB is an open database.
type DB struct {
	core *core.DB
	opts Options
}

// Open opens or bootstraps a database in dir. On first open it installs the
// OPAL kernel image (collection protocol, System and Transcript).
func Open(dir string, opts Options) (*DB, error) {
	if opts.SystemPassword == "" {
		opts.SystemPassword = "swordfish"
	}
	cdb, err := core.Open(dir, core.Options{
		Store: store.Options{
			TrackSize:   opts.TrackSize,
			Replicas:    opts.Replicas,
			CacheTracks: opts.CacheTracks,
			WriteQuorum: opts.WriteQuorum,
			OpenReplica: opts.OpenReplica,
			FailPoint:   opts.FailPoint,
		},
		SystemPassword: opts.SystemPassword,
	})
	if err != nil {
		return nil, err
	}
	db := &DB{core: cdb, opts: opts}
	// Ensure the OPAL image exists (needs a system session once).
	sys, err := cdb.NewSession(auth.SystemUser, opts.SystemPassword)
	if err != nil {
		cdb.Close()
		return nil, err
	}
	if _, err := opal.NewInterp(sys); err != nil {
		sys.Close()
		cdb.Close()
		return nil, fmt.Errorf("gemstone: installing OPAL image: %w", err)
	}
	// Retire the bootstrap session: left open it would pin the validation
	// log forever and, camped on the published tip, force the first real
	// commit off the idle-pipeline fast path.
	sys.Close()
	return db, nil
}

// Close releases the database.
func (db *DB) Close() error { return db.core.Close() }

// Core exposes the underlying Object Manager for advanced use (experiment
// harnesses, statistics).
func (db *DB) Core() *core.DB { return db.core }

// Stats returns a point-in-time snapshot of every engine metric: commit and
// abort counters, group-commit sizes, track I/O, index-vs-scan counts,
// latency histograms and the slow-query log. The same snapshot backs the
// OpStats wire operation and the cmd/gemstone -statsevery dump.
func (db *DB) Stats() *obs.Snapshot { return db.core.Obs().Snapshot() }

// Health reports the state of every replica arm: healthy, suspect (media
// damage seen; still written and scrub-promotable) or degraded (missed
// writes; excluded until rebuilt). The same report backs the OpHealth
// wire operation and cmd/opal's /health command.
func (db *DB) Health() []store.ArmHealth { return db.core.Store().Health() }

// Scrub runs one online scrub pass over every allocated track, repairing
// damaged copies from a valid arm. Commits proceed concurrently with the
// sweep.
func (db *DB) Scrub() store.ScrubResult { return db.core.Store().Scrub() }

// Rebuild reconstructs a degraded replica arm bit-for-bit from the
// surviving arms and reinstates it to healthy.
func (db *DB) Rebuild(replica int) error { return db.core.Store().Rebuild(replica) }

// CreateUser adds a user account (administrators only); convenience that
// logs in as SystemUser.
func (db *DB) CreateUser(name, password string) error {
	s, err := db.core.NewSession(auth.SystemUser, db.opts.SystemPassword)
	if err != nil {
		return err
	}
	defer s.Close()
	return s.CreateUser(name, password)
}

// Session is one user connection: an OPAL interpreter over a private object
// space with optimistic transaction semantics and a time dial.
//
// A Session is not safe for concurrent use by multiple goroutines — it
// models one user's workspace, exactly as the paper's per-user Executor
// session does. Concurrency comes from opening multiple sessions against
// the same DB; the Transaction Manager serializes their commits.
type Session struct {
	s  *core.Session
	in *opal.Interp
}

// Login authenticates a user and starts a session.
func (db *DB) Login(user, password string) (*Session, error) {
	s, err := db.core.NewSession(user, password)
	if err != nil {
		return nil, err
	}
	in, err := opal.NewInterp(s)
	if err != nil {
		// Left open, the half-built session would pin the validation log
		// and camp on the published tip forever.
		s.Close()
		return nil, err
	}
	return &Session{s: s, in: in}, nil
}

// Result is the outcome of executing a block of OPAL source.
type Result struct {
	Value   Value  // the value of the last expression
	Printed string // its printString
	Output  string // Transcript output produced during execution
}

// Execute compiles and runs a block of OPAL source.
func (se *Session) Execute(source string) (Result, error) {
	v, err := se.in.Execute(source)
	out := se.in.TakeOutput()
	if err != nil {
		return Result{Output: out}, err
	}
	p, perr := se.in.PrintString(v)
	if perr != nil {
		p = v.String()
	}
	return Result{Value: v, Printed: p, Output: out}, nil
}

// Run executes OPAL source and returns the result's printString.
func (se *Session) Run(source string) (string, error) {
	r, err := se.Execute(source)
	if err != nil {
		return "", err
	}
	return r.Printed, nil
}

// MustRun is Run for program setup code; it panics on error.
func (se *Session) MustRun(source string) string {
	out, err := se.Run(source)
	if err != nil {
		panic(err)
	}
	return out
}

// Row is one query result row: target label -> value.
type Row map[string]Value

// Query parses, optimizes and executes a set-calculus query.
func (se *Session) Query(src string) ([]Row, error) {
	tuples, _, err := algebra.Run(se.s, src)
	if err != nil {
		return nil, err
	}
	return rowsOf(tuples), nil
}

// QueryNaive executes a query with the unoptimized calculus-order plan
// (for comparisons).
func (se *Session) QueryNaive(src string) ([]Row, error) {
	tuples, _, err := algebra.RunNaive(se.s, src)
	if err != nil {
		return nil, err
	}
	return rowsOf(tuples), nil
}

// QueryParallel executes the optimized plan with its outermost scan fanned
// across a bounded worker pool (workers <= 0 selects the default). Results
// are identical to Query, in the same order.
func (se *Session) QueryParallel(src string, workers int) ([]Row, error) {
	q, err := calculus.Parse(src)
	if err != nil {
		return nil, err
	}
	p, err := algebra.Optimize(q, se.s)
	if err != nil {
		return nil, err
	}
	tuples, _, err := p.ExecParallel(se.s, workers)
	if err != nil {
		return nil, err
	}
	return rowsOf(tuples), nil
}

func rowsOf(tuples []algebra.Tuple) []Row {
	rows := make([]Row, len(tuples))
	for i, t := range tuples {
		r := make(Row, len(t.Labels))
		for j, l := range t.Labels {
			r[l] = t.Values[j]
		}
		rows[i] = r
	}
	return rows
}

// Explain returns the optimized query plan as text.
func (se *Session) Explain(src string) (string, error) {
	q, err := calculus.Parse(src)
	if err != nil {
		return "", err
	}
	p, err := algebra.Optimize(q, se.s)
	if err != nil {
		return "", err
	}
	return p.Explain(), nil
}

// Path evaluates a path expression (X!a!b@T!c) rooted at a global or a
// binding in env (may be nil).
func (se *Session) Path(expr string, env map[string]Value) (Value, error) {
	return path.EvalString(se.s, expr, path.GlobalsEnv{Session: se.s, Locals: env})
}

// PathAssign assigns value at the end of a path expression.
func (se *Session) PathAssign(expr string, value Value, env map[string]Value) error {
	return path.AssignString(se.s, expr, path.GlobalsEnv{Session: se.s, Locals: env}, value)
}

// Print renders any value as OPAL's printString.
func (se *Session) Print(v Value) (string, error) { return se.in.PrintString(v) }

// SetContext bounds the session's next request by ctx: OPAL execution,
// query scans and CommitCtx abandon work once ctx is cancelled, returning
// an error wrapping the cause. Pass nil to clear. Set it between requests
// — a Session is single-goroutine and this is not a concurrent interrupt.
func (se *Session) SetContext(ctx context.Context) { se.s.SetContext(ctx) }

// Commit validates and durably applies the transaction, returning the
// assigned transaction time. On conflict the workspace has been discarded
// and a fresh transaction begun.
func (se *Session) Commit() (Time, error) { return se.s.Commit() }

// CommitCtx is Commit bounded by a request context: if ctx is already
// cancelled before the commit reaches admission, the transaction aborts
// (no transaction time consumed) and the cancellation error is returned.
// Once admitted the commit always runs to durability.
func (se *Session) CommitCtx(ctx context.Context) (Time, error) { return se.s.CommitCtx(ctx) }

// Abort discards pending changes.
func (se *Session) Abort() { se.s.Abort() }

// Close discards pending changes and retires the session's transaction
// for good; the session must not be used afterwards.
func (se *Session) Close() { se.s.Close() }

// SetTimeDial points reads at a past database state; pass Now to return to
// the present.
func (se *Session) SetTimeDial(t Time) error { return se.s.SetTimeDial(t) }

// SafeTime is the most recent state no running transaction can change.
func (se *Session) SafeTime() Time { return se.s.SafeTime() }

// CreateIndex builds a history-aware directory on a set (named by a path
// expression) keyed by the element-name path.
func (se *Session) CreateIndex(setExpr string, keyPath []string) error {
	set, err := se.Path(setExpr, nil)
	if err != nil {
		return err
	}
	return se.s.CreateIndex(set, keyPath)
}

// Core exposes the underlying session.
func (se *Session) Core() *core.Session { return se.s }

// Interp exposes the OPAL interpreter.
func (se *Session) Interp() *opal.Interp { return se.in }

// HistoryEntry is one committed association of an element's history.
type HistoryEntry = core.HistoryEntry

// History returns the committed (time, value) associations of an object's
// element, oldest first — the paper's per-element history as data.
func (se *Session) History(obj Value, element string) ([]HistoryEntry, error) {
	return se.s.History(obj, se.s.Symbol(element))
}
