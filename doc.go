// Package repro is a from-scratch Go reproduction of Copeland & Maier,
// "Making Smalltalk a Database System" (SIGMOD 1984) — the GemStone object
// database and its OPAL language.
//
// The public API is in package repro/gemstone; the paper's experiment
// harness is cmd/gsbench; bench_test.go in this directory holds the
// testing.B series behind each claim (C1..C10 in DESIGN.md).
package repro
