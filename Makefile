# Tier-1 verification: everything CI runs, in the same order.
# `make verify` must pass before any commit.

GO ?= go

.PHONY: verify build vet lint waivers test race bench bench-gate bench-gate-record gslint

verify: build vet lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The gslint binary is built once into bin/ and reused by lint, waivers
# and CI; `go build` is incremental, so repeat runs are near-free.
gslint:
	$(GO) build -o bin/gslint ./cmd/gslint

# gslint machine-checks the paper's implementation invariants (locking
# discipline, deterministic serialization, commit-clock time, OOP identity,
# lock-order deadlock freedom, cache-alias escapes, atomic-field access,
# lock-release path coverage, goroutine lifecycles, durability error flow,
# package-global mutable state). See DESIGN.md "Invariants & static
# analysis".
lint: gslint
	./bin/gslint ./...

# waivers audits every //lint:ignore suppression with its reason. CI
# enforces a count budget over this listing so waivers cannot grow
# silently; raise the budget in .github/workflows/ci.yml deliberately.
waivers: gslint
	./bin/gslint -waivers ./...

test:
	$(GO) test ./...

# race covers every package, which includes the wire session-authorization
# regression tests, the executor logout/execute race test, and the obs
# snapshot-determinism test.
race:
	$(GO) test -race ./...

# bench runs the full benchmark suite, folds the numbers into the
# BENCH_2.json ledger (section "current"; the committed "baseline" section
# predates the group-commit pipeline), and regenerates the paper's
# experiments. benchjson reads `go test -bench` output from stdin.
bench:
	$(GO) test -bench=. -benchmem ./... | tee /tmp/bench_out.txt
	$(GO) run ./cmd/benchjson -o BENCH_2.json -section current < /tmp/bench_out.txt
	$(GO) run ./cmd/gsbench -openloop -conns 1000 -ledger BENCH_2.json
	$(GO) run ./cmd/gsbench -all

# The single-writer commit benchmarks that gate the commit path's
# allocation budget. -benchtime is pinned to a fixed iteration count:
# with append-only history every commit grows the written record, so
# B/op depends on b.N; at a fixed count it is deterministic and
# machine-independent.
GATE_BENCH = BenchmarkCommitAllocs/workers=1$$|BenchmarkC3_OptimisticCommits/disjoint/workers=1$$
GATE_TIME  = 300x

# The streaming-executor plan benchmarks that gate the query path's
# allocation budget (the C1 plan family over the 85-employee Acme set).
# Read-only queries don't grow history, but a fixed iteration count keeps
# the gate cheap and deterministic anyway.
QUERY_GATE_BENCH = BenchmarkC1_QueryPlans/(optimized|parallel)/employees=85$$
QUERY_GATE_TIME  = 50x

# bench-gate compares a fresh run against the committed commit_gate
# baseline in BENCH_2.json and fails on regression. B/op and allocs/op
# are tight (they don't depend on machine speed); ns/op is a loose
# catastrophic-regression backstop because shared-runner wall clock
# swings 2-3x.
bench-gate:
	$(GO) test -bench '$(GATE_BENCH)' -benchtime=$(GATE_TIME) -benchmem -run '^$$' . \
	  | $(GO) run ./cmd/benchjson -gate BENCH_2.json -section commit_gate \
	      -metric B/op:1.25 -metric allocs/op:1.2 -metric ns/op:4.0
	$(GO) test -bench '$(QUERY_GATE_BENCH)' -benchtime=$(QUERY_GATE_TIME) -benchmem -run '^$$' . \
	  | $(GO) run ./cmd/benchjson -gate BENCH_2.json -section query_gate \
	      -metric B/op:1.25 -metric allocs/op:1.2 -metric ns/op:4.0

# bench-gate-record re-baselines the gate. Run deliberately, in the same
# PR as an intentional commit-path change, never to paper over a
# regression.
bench-gate-record:
	$(GO) test -bench '$(GATE_BENCH)' -benchtime=$(GATE_TIME) -benchmem -run '^$$' . \
	  | $(GO) run ./cmd/benchjson -o BENCH_2.json -section commit_gate
	$(GO) test -bench '$(QUERY_GATE_BENCH)' -benchtime=$(QUERY_GATE_TIME) -benchmem -run '^$$' . \
	  | $(GO) run ./cmd/benchjson -o BENCH_2.json -section query_gate
