# Tier-1 verification: everything CI runs, in the same order.
# `make verify` must pass before any commit.

GO ?= go

.PHONY: verify build vet lint test race bench

verify: build vet lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gslint machine-checks the paper's implementation invariants (locking
# discipline, deterministic serialization, commit-clock time, OOP identity).
# See DESIGN.md "Invariants & static analysis".
lint:
	$(GO) run ./cmd/gslint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
