// Command gsbench regenerates the paper's figure, worked examples, and the
// benchmark series behind every performance claim (see DESIGN.md's
// experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	gsbench -list
//	gsbench -exp fig1
//	gsbench -all
//	gsbench -stats -ledger BENCH_2.json
//	gsbench -openloop -conns 1000 -ledger BENCH_2.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiments")
	exp := flag.String("exp", "", "run one experiment by id")
	all := flag.Bool("all", false, "run every experiment")
	stats := flag.Bool("stats", false, "run the engine-counter workload and append an 'engine' section to the ledger")
	openloop := flag.Bool("openloop", false, "run the open-loop overload workload and append a 'frontend' section to the ledger")
	conns := flag.Int("conns", 1000, "connection count for -openloop")
	rate := flag.Float64("rate", 0, "offered requests/s for -openloop (0 = sweep 0.5x/1x/2x of measured peak)")
	duration := flag.Duration("duration", 2*time.Second, "length of each -openloop measurement run")
	ledger := flag.String("ledger", "", "ledger file for -stats/-openloop (default: print only)")
	flag.Parse()

	switch {
	case *openloop:
		section, err := experiments.Frontend(os.Stdout, *conns, *rate, *duration)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gsbench: openloop: %v\n", err)
			os.Exit(1)
		}
		if *ledger == "" {
			return
		}
		doc, err := experiments.ReadLedger(*ledger)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gsbench: %v\n", err)
			os.Exit(1)
		}
		doc["frontend"] = section
		if err := experiments.WriteLedger(*ledger, doc); err != nil {
			fmt.Fprintf(os.Stderr, "gsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote frontend section to %s\n", *ledger)
	case *stats:
		section, err := experiments.EngineStats(os.Stdout, 4, 25)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gsbench: stats: %v\n", err)
			os.Exit(1)
		}
		if *ledger == "" {
			return
		}
		doc, err := experiments.ReadLedger(*ledger)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gsbench: %v\n", err)
			os.Exit(1)
		}
		doc["engine"] = section
		if err := experiments.WriteLedger(*ledger, doc); err != nil {
			fmt.Fprintf(os.Stderr, "gsbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote engine section to %s\n", *ledger)
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
	case *exp != "":
		e, ok := experiments.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "gsbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "gsbench: %v\n", err)
			os.Exit(1)
		}
	case *all:
		failed := 0
		for _, e := range experiments.All() {
			fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
			if err := e.Run(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "gsbench: %s: %v\n", e.ID, err)
				failed++
			}
			fmt.Println()
		}
		if failed > 0 {
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
