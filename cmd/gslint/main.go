// Command gslint runs the GemStone invariant analyzers over the
// repository's own source:
//
//	go run ./cmd/gslint ./...
//
// It exits non-zero if any finding survives. See internal/analysis for the
// analyzers (locksafe, detmap, wallclock, ooppure, lockorder, aliasret,
// atomicfield, unlockpath, goroleak, errflow, globalstate, bufown,
// sessionlife, ctxflow) and the //lint:ignore <analyzer> <reason>
// suppression syntax.
//
// Packages are analyzed in parallel: whole-program phases run single-flight
// once, the per-package passes fan across -parallel workers, and findings
// are emitted in package load order — byte-identical to -parallel=1.
//
// Modes:
//
//	gslint ./...            human-readable findings, exit 1 if any
//	gslint -json ./...      findings as a JSON array (always exit 0 unless
//	                        the load itself fails; CI inspects the array)
//	gslint -waivers ./...   audit listing of every //lint:ignore waiver
//	                        with its reason (combine with -json)
//	gslint -list            list analyzers and their package scopes
//	gslint -parallel=N ...  cap the per-package worker fan-out (default
//	                        GOMAXPROCS; 1 forces the serial loop)
//	gslint -timing ...      report per-analyzer cumulative wall time to
//	                        stderr after the run (parallel times overlap)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/analysis"
)

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// jsonWaiver is the -json wire form of one //lint:ignore suppression.
type jsonWaiver struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
}

func main() {
	var (
		list     = flag.Bool("list", false, "list analyzers and exit")
		only     = flag.String("only", "", "comma-separated analyzer names to run (default all)")
		jsonOut  = flag.Bool("json", false, "emit findings (or waivers) as JSON")
		waivers  = flag.Bool("waivers", false, "list every //lint:ignore waiver instead of running analyzers")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent per-package passes (1 = serial)")
		timing   = flag.Bool("timing", false, "report per-analyzer cumulative wall time to stderr")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gslint [-list] [-only a,b] [-json] [-waivers] [-parallel N] [-timing] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			scope := "all packages"
			if len(a.Paths) > 0 {
				scope = strings.Join(a.Paths, ", ")
			}
			fmt.Printf("%-12s %s\n%13s(scope: %s)\n", a.Name, a.Doc, "", scope)
		}
		return
	}
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				filtered = append(filtered, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "gslint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = filtered
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.LoadPackages(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gslint: %v\n", err)
		os.Exit(2)
	}

	if *waivers {
		auditWaivers(pkgs, *jsonOut)
		return
	}

	prog := analysis.BuildProgram(pkgs)
	var table *analysis.TimingTable
	if *timing {
		table = analysis.NewTimingTable()
	}
	all := analysis.RunAll(analyzers, prog, pkgs, *parallel, table)
	if table != nil {
		for _, row := range table.Rows() {
			fmt.Fprintf(os.Stderr, "%-12s %12s\n", row.Analyzer, row.Elapsed.Round(10*time.Microsecond))
		}
	}

	if *jsonOut {
		out := make([]jsonFinding, 0, len(all))
		for _, f := range all {
			out = append(out, jsonFinding{
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "gslint: %v\n", err)
			os.Exit(2)
		}
		return
	}
	for _, f := range all {
		fmt.Println(f)
	}
	if len(all) > 0 {
		os.Exit(1)
	}
}

// auditWaivers prints every suppression comment in the loaded packages.
// A waiver missing its analyzer or reason is malformed; the normal lint
// run flags those, but the audit marks them too so the listing stands
// alone.
func auditWaivers(pkgs []*analysis.Package, jsonOut bool) {
	var all []jsonWaiver
	for _, pkg := range pkgs {
		for _, w := range analysis.Waivers(pkg) {
			all = append(all, jsonWaiver{
				File:     w.Pos.Filename,
				Line:     w.Pos.Line,
				Analyzer: w.Analyzer,
				Reason:   w.Reason,
			})
		}
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintf(os.Stderr, "gslint: %v\n", err)
			os.Exit(2)
		}
		return
	}
	for _, w := range all {
		analyzer, reason := w.Analyzer, w.Reason
		if analyzer == "" {
			analyzer, reason = "MALFORMED", "(missing analyzer or reason)"
		}
		fmt.Printf("%s:%d: %s: %s\n", w.File, w.Line, analyzer, reason)
	}
}
