// Command gslint runs the GemStone invariant analyzers over the
// repository's own source:
//
//	go run ./cmd/gslint ./...
//
// It exits non-zero if any finding survives. See internal/analysis for the
// analyzers (locksafe, detmap, wallclock, ooppure) and the
// //lint:ignore <analyzer> <reason> suppression syntax.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		list = flag.Bool("list", false, "list analyzers and exit")
		only = flag.String("only", "", "comma-separated analyzer names to run (default all)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gslint [-list] [-only a,b] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			scope := "all packages"
			if len(a.Paths) > 0 {
				scope = strings.Join(a.Paths, ", ")
			}
			fmt.Printf("%-10s %s\n%11s(scope: %s)\n", a.Name, a.Doc, "", scope)
		}
		return
	}
	if *only != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				filtered = append(filtered, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "gslint: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = filtered
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.LoadPackages(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gslint: %v\n", err)
		os.Exit(2)
	}

	failed := false
	for _, pkg := range pkgs {
		for _, f := range analysis.RunAnalyzers(analyzers, pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info) {
			fmt.Println(f)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
