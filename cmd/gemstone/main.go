// Command gemstone is the database server daemon: it opens (or bootstraps)
// a database and serves the host ↔ GemStone network link, accepting blocks
// of OPAL source from clients (paper §6).
//
// Usage:
//
//	gemstone -db ./mydb -listen :7833
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"

	"repro/gemstone"
	"repro/internal/executor"
	"repro/internal/wire"
)

func main() {
	dbDir := flag.String("db", "gemstone.db", "database directory")
	listen := flag.String("listen", "127.0.0.1:7833", "listen address")
	trackSize := flag.Int("track", 8192, "track size in bytes")
	replicas := flag.Int("replicas", 1, "track replicas")
	sysPassword := flag.String("syspass", "swordfish", "SystemUser password (used at bootstrap)")
	flag.Parse()

	if err := os.MkdirAll(*dbDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "gemstone: %v\n", err)
		os.Exit(1)
	}
	db, err := gemstone.Open(*dbDir, gemstone.Options{
		TrackSize:      *trackSize,
		Replicas:       *replicas,
		SystemPassword: *sysPassword,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gemstone: open: %v\n", err)
		os.Exit(1)
	}
	defer db.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gemstone: listen: %v\n", err)
		os.Exit(1)
	}
	srv := wire.Serve(ln, executor.New(db))
	fmt.Printf("gemstone: serving %s on %s (last committed time %v)\n",
		*dbDir, srv.Addr(), db.Core().TxnManager().LastCommitted())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("\ngemstone: shutting down")
	srv.Close()
}
