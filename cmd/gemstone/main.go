// Command gemstone is the database server daemon: it opens (or bootstraps)
// a database and serves the host ↔ GemStone network link, accepting blocks
// of OPAL source from clients (paper §6).
//
// Usage:
//
//	gemstone -db ./mydb -listen :7833
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"time"

	"repro/gemstone"
	"repro/internal/executor"
	"repro/internal/wire"
)

func main() {
	dbDir := flag.String("db", "gemstone.db", "database directory")
	listen := flag.String("listen", "127.0.0.1:7833", "listen address")
	trackSize := flag.Int("track", 8192, "track size in bytes")
	replicas := flag.Int("replicas", 1, "track replicas")
	quorum := flag.Int("quorum", 1, "minimum replica arms a commit must reach durably")
	sysPassword := flag.String("syspass", "swordfish", "SystemUser password (used at bootstrap)")
	idle := flag.Duration("idletimeout", 0, "drop connections idle longer than this (0 = never)")
	maxInFlight := flag.Int("maxinflight", 0, "max pipelined frames per connection (0 = default 8)")
	queueDepth := flag.Int("queuedepth", 0, "admission queue depth before requests are shed (0 = admission off unless -maxconcurrent)")
	queueWait := flag.Duration("queuewait", 0, "max time a request waits for an execution slot (0 = default 100ms)")
	maxConcurrent := flag.Int("maxconcurrent", 0, "max concurrent heavy ops; login/execute/commit (0 = admission off unless -queuedepth)")
	deadline := flag.Duration("deadline", 0, "default per-request execution deadline (0 = none)")
	drainTimeout := flag.Duration("draintimeout", 30*time.Second, "max time to drain in-flight requests on shutdown (0 = wait forever)")
	statsEvery := flag.Duration("statsevery", 0, "dump engine metrics to stderr at this interval (0 = never)")
	scrubEvery := flag.Duration("scrubevery", 0, "run an online replica scrub pass at this interval (0 = never)")
	flag.Parse()

	if err := os.MkdirAll(*dbDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "gemstone: %v\n", err)
		os.Exit(1)
	}
	db, err := gemstone.Open(*dbDir, gemstone.Options{
		TrackSize:      *trackSize,
		Replicas:       *replicas,
		WriteQuorum:    *quorum,
		SystemPassword: *sysPassword,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gemstone: open: %v\n", err)
		os.Exit(1)
	}
	defer db.Close()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gemstone: listen: %v\n", err)
		os.Exit(1)
	}
	srv := wire.ServeConfig(ln, executor.New(db), wire.Config{
		IdleTimeout:     *idle,
		MaxInFlight:     *maxInFlight,
		QueueDepth:      *queueDepth,
		QueueWait:       *queueWait,
		MaxConcurrent:   *maxConcurrent,
		DefaultDeadline: *deadline,
	})
	fmt.Printf("gemstone: serving %s on %s (last committed time %v)\n",
		*dbDir, srv.Addr(), db.Core().TxnManager().LastCommitted())

	stop := make(chan struct{})
	if *statsEvery > 0 {
		go func() {
			tick := time.NewTicker(*statsEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					fmt.Fprintf(os.Stderr, "--- stats %s ---\n%s", time.Now().Format(time.RFC3339), db.Stats())
				case <-stop:
					return
				}
			}
		}()
	}

	if *scrubEvery > 0 {
		go func() {
			tick := time.NewTicker(*scrubEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					res := db.Scrub()
					if res.SyncErr != nil {
						fmt.Fprintf(os.Stderr, "gemstone: scrub: sync failed, repairs may not be durable: %v\n", res.SyncErr)
					}
					if res.Repaired > 0 || res.Lost > 0 || res.SyncErr != nil {
						fmt.Fprintf(os.Stderr, "gemstone: scrub: %d tracks scanned, %d repaired, %d lost\n",
							res.Scanned, res.Repaired, res.Lost)
						for _, h := range db.Health() {
							if h.State != "healthy" {
								fmt.Fprintf(os.Stderr, "gemstone: replica %d (%s): %s %s\n",
									h.Replica, h.Path, h.State, h.LastError)
							}
						}
					}
				case <-stop:
					return
				}
			}
		}()
	}

	// First interrupt: graceful drain — stop accepting, shed queued work,
	// let in-flight commits finish and flush their acknowledgments.
	// Second interrupt: close hard.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt)
	<-sig
	close(stop)
	fmt.Println("\ngemstone: draining (interrupt again to close hard)")
	drained := make(chan error, 1)
	go func() { drained <- srv.Shutdown(*drainTimeout) }()
	select {
	case err := <-drained:
		if err != nil {
			fmt.Fprintf(os.Stderr, "gemstone: drain: %v\n", err)
		}
	case <-sig:
		fmt.Println("gemstone: closing hard")
		srv.Close()
	}
}
