// Command opal is the host-side interactive client: a REPL that sends
// blocks of OPAL source to a GemStone server (or an embedded database) and
// prints results — the "user interface programs on host machines" of §6.
//
// Usage:
//
//	opal -connect 127.0.0.1:7833 -user SystemUser -password swordfish
//	opal -db ./mydb          (embedded, no server)
//
// Enter OPAL statements; an empty line executes the buffered block.
// Commands: \commit, \abort, /stats, /health, \quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/gemstone"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/wire"
)

// session abstracts the remote and embedded back ends.
type session interface {
	Execute(src string) (result, output string, err error)
	Commit() (uint64, error)
	Abort() error
	Stats() (*obs.Snapshot, error)
	Health() ([]store.ArmHealth, error)
}

type embedded struct {
	s  *gemstone.Session
	db *gemstone.DB
}

func (e embedded) Execute(src string) (string, string, error) {
	r, err := e.s.Execute(src)
	return r.Printed, r.Output, err
}
func (e embedded) Commit() (uint64, error) {
	t, err := e.s.Commit()
	return uint64(t), err
}
func (e embedded) Abort() error                       { e.s.Abort(); return nil }
func (e embedded) Stats() (*obs.Snapshot, error)      { return e.db.Stats(), nil }
func (e embedded) Health() ([]store.ArmHealth, error) { return e.db.Health(), nil }

type remote struct{ r *wire.RemoteSession }

func (r remote) Execute(src string) (string, string, error) { return r.r.Execute(src) }
func (r remote) Commit() (uint64, error)                    { return r.r.Commit() }
func (r remote) Abort() error                               { return r.r.Abort() }
func (r remote) Stats() (*obs.Snapshot, error)              { return r.r.Stats() }
func (r remote) Health() ([]store.ArmHealth, error)         { return r.r.Health() }

func main() {
	connect := flag.String("connect", "", "server address (remote mode)")
	dbDir := flag.String("db", "", "database directory (embedded mode)")
	user := flag.String("user", gemstone.SystemUser, "user name")
	password := flag.String("password", "swordfish", "password")
	execSrc := flag.String("e", "", "execute one block and exit")
	callTimeout := flag.Duration("calltimeout", 0, "give up on a server response after this long (0 = wait forever)")
	flag.Parse()

	var sess session
	switch {
	case *connect != "":
		c, err := wire.DialRetry(*connect, 3*time.Second, 5)
		if err != nil {
			fatal(err)
		}
		defer c.Close()
		if *callTimeout > 0 {
			c.SetCallTimeout(*callTimeout)
		}
		rs, err := c.Login(*user, *password)
		if err != nil {
			fatal(err)
		}
		sess = remote{rs}
	case *dbDir != "":
		if err := os.MkdirAll(*dbDir, 0o755); err != nil {
			fatal(err)
		}
		db, err := gemstone.Open(*dbDir, gemstone.Options{})
		if err != nil {
			fatal(err)
		}
		defer db.Close()
		s, err := db.Login(*user, *password)
		if err != nil {
			fatal(err)
		}
		sess = embedded{s: s, db: db}
	default:
		fmt.Fprintln(os.Stderr, "opal: need -connect or -db")
		os.Exit(2)
	}

	if *execSrc != "" {
		run(sess, *execSrc)
		return
	}

	fmt.Println("OPAL — blocks end with an empty line; \\commit \\abort /stats /health \\quit")
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var block []string
	for {
		if len(block) == 0 {
			fmt.Print("opal> ")
		} else {
			fmt.Print("  ... ")
		}
		if !in.Scan() {
			return
		}
		line := in.Text()
		switch strings.TrimSpace(line) {
		case "\\quit":
			return
		case "\\commit":
			t, err := sess.Commit()
			if err != nil {
				fmt.Printf("commit failed: %v\n", err)
			} else {
				fmt.Printf("committed at t%d\n", t)
			}
			continue
		case "\\abort":
			if err := sess.Abort(); err != nil {
				fmt.Printf("abort: %v\n", err)
			} else {
				fmt.Println("aborted")
			}
			continue
		case "/stats", "\\stats":
			snap, err := sess.Stats()
			if err != nil {
				fmt.Printf("stats: %v\n", err)
			} else {
				fmt.Print(snap.String())
			}
			continue
		case "/health", "\\health":
			arms, err := sess.Health()
			if err != nil {
				fmt.Printf("health: %v\n", err)
				continue
			}
			for _, h := range arms {
				fmt.Printf("replica %d  %-8s  fallbacks=%d repairs=%d  %s",
					h.Replica, h.State, h.Fallbacks, h.Repairs, h.Path)
				if h.LastError != "" {
					fmt.Printf("  (%s)", h.LastError)
				}
				fmt.Println()
			}
			continue
		case "":
			if len(block) > 0 {
				run(sess, strings.Join(block, "\n"))
				block = block[:0]
			}
			continue
		}
		block = append(block, line)
	}
}

func run(sess session, src string) {
	result, output, err := sess.Execute(src)
	if output != "" {
		fmt.Print(output)
		if !strings.HasSuffix(output, "\n") {
			fmt.Println()
		}
	}
	if err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	fmt.Println(result)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "opal: %v\n", err)
	os.Exit(1)
}
