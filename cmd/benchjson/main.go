// Command benchjson converts `go test -bench` output on stdin into a JSON
// ledger keyed by benchmark name, recording ns/op, B/op, allocs/op, and any
// custom metrics (such as aborts/op from the commit benchmarks). Sections
// let one file carry both a pre-change baseline and the current numbers:
//
//	go test -bench . -benchmem | go run ./cmd/benchjson -o BENCH_2.json -section current
//
// When the output file already exists, other sections are preserved and
// only the named section is replaced, so successive runs build a history.
// The ledger format is shared with `gsbench -stats` (the "engine" section)
// via internal/experiments.
//
// With -gate, benchjson instead compares the stdin results against a
// recorded section and exits nonzero on regression:
//
//	go test -bench CommitAllocs -benchtime=300x -benchmem | \
//	  go run ./cmd/benchjson -gate BENCH_2.json -section commit_gate \
//	  -metric B/op:1.25 -metric allocs/op:1.2
//
// Each -metric names a unit and the maximum allowed current/baseline
// ratio; metrics without a -metric flag are not gated. Benchmarks missing
// from the baseline section are reported but do not fail the gate, so new
// benchmarks can land before their baseline is recorded. Gates that rely
// on allocation counts should pin -benchtime to a fixed iteration count:
// B/op is machine-independent but not, with append-only history growing
// every record, iteration-count-independent.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

// ratioFlags collects repeated -metric unit:maxRatio flags.
type ratioFlags map[string]float64

func (r ratioFlags) String() string { return fmt.Sprintf("%v", map[string]float64(r)) }

func (r ratioFlags) Set(s string) error {
	unit, ratio, ok := strings.Cut(s, ":")
	if !ok {
		return fmt.Errorf("want unit:maxRatio, got %q", s)
	}
	v, err := strconv.ParseFloat(ratio, 64)
	if err != nil || v <= 0 {
		return fmt.Errorf("bad ratio in %q", s)
	}
	r[unit] = v
	return nil
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	section := flag.String("section", "current", "section name to write results under (or compare against with -gate)")
	gate := flag.String("gate", "", "ledger file to gate against; compare stdin results to -section and exit nonzero on regression")
	ratios := ratioFlags{}
	flag.Var(ratios, "metric", "unit:maxRatio pair to gate (repeatable), e.g. B/op:1.25")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *gate != "" {
		doc, err := experiments.ReadLedger(*gate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		if runGate(os.Stderr, results, doc[*section], ratios) {
			os.Exit(1)
		}
		return
	}

	doc := experiments.Ledger{}
	if *out != "" {
		doc, err = experiments.ReadLedger(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	doc[*section] = results

	if *out == "" {
		os.Stdout.Write(experiments.MarshalLedger(doc))
		return
	}
	if err := experiments.WriteLedger(*out, doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s section %q\n", len(results), *out, *section)
}

// runGate compares current results against a baseline section and reports
// every gated metric. Returns true when any metric exceeds its allowed
// ratio. Iteration order is sorted so the report is deterministic.
func runGate(w *os.File, current, baseline map[string]map[string]float64, ratios ratioFlags) bool {
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	units := make([]string, 0, len(ratios))
	for unit := range ratios {
		units = append(units, unit)
	}
	sort.Strings(names)
	sort.Strings(units)
	failed := false
	for _, name := range names {
		base, ok := baseline[name]
		if !ok {
			fmt.Fprintf(w, "benchjson: gate: %s has no recorded baseline; skipping\n", name)
			continue
		}
		for _, unit := range units {
			cur, haveCur := current[name][unit]
			want, haveBase := base[unit]
			if !haveCur || !haveBase || want == 0 {
				continue
			}
			ratio := cur / want
			status := "ok"
			if ratio > ratios[unit] {
				status = "FAIL"
				failed = true
			}
			fmt.Fprintf(w, "benchjson: gate: %-4s %s %s: %.6g vs baseline %.6g (%.2fx, allowed %.2fx)\n",
				status, name, unit, cur, want, ratio, ratios[unit])
		}
	}
	return failed
}

// parse reads `go test -bench` text and extracts one metric map per
// benchmark line. A line looks like:
//
//	BenchmarkC3/disjoint/workers=4-8  2049  560997 ns/op  0.0 aborts/op  104297 B/op  54 allocs/op
func parse(f *os.File) (map[string]map[string]float64, error) {
	results := make(map[string]map[string]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the trailing -GOMAXPROCS suffix so names are stable across
		// machines.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		metrics := make(map[string]float64)
		// fields[1] is the iteration count; after it come value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) > 0 {
			results[name] = metrics
		}
	}
	return results, sc.Err()
}
