// Command benchjson converts `go test -bench` output on stdin into a JSON
// ledger keyed by benchmark name, recording ns/op, B/op, allocs/op, and any
// custom metrics (such as aborts/op from the commit benchmarks). Sections
// let one file carry both a pre-change baseline and the current numbers:
//
//	go test -bench . -benchmem | go run ./cmd/benchjson -o BENCH_2.json -section current
//
// When the output file already exists, other sections are preserved and
// only the named section is replaced, so successive runs build a history.
// The ledger format is shared with `gsbench -stats` (the "engine" section)
// via internal/experiments.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	section := flag.String("section", "current", "section name to write results under")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	doc := experiments.Ledger{}
	if *out != "" {
		doc, err = experiments.ReadLedger(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	doc[*section] = results

	if *out == "" {
		os.Stdout.Write(experiments.MarshalLedger(doc))
		return
	}
	if err := experiments.WriteLedger(*out, doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s section %q\n", len(results), *out, *section)
}

// parse reads `go test -bench` text and extracts one metric map per
// benchmark line. A line looks like:
//
//	BenchmarkC3/disjoint/workers=4-8  2049  560997 ns/op  0.0 aborts/op  104297 B/op  54 allocs/op
func parse(f *os.File) (map[string]map[string]float64, error) {
	results := make(map[string]map[string]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		// Strip the trailing -GOMAXPROCS suffix so names are stable across
		// machines.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		metrics := make(map[string]float64)
		// fields[1] is the iteration count; after it come value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			metrics[fields[i+1]] = v
		}
		if len(metrics) > 0 {
			results[name] = metrics
		}
	}
	return results, sc.Err()
}
